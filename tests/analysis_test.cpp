//===- tests/analysis_test.cpp - brainy check analysis tests --------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
// Covers the `brainy check` pipeline (DESIGN.md §11): declaration binding
// (qualified, bare, alias, typedef), per-variable operation attribution,
// the op-set -> required-property table, the legality matrix verdicts, and
// determinism of the JSON report across runs and job counts.
//
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "analysis/UsageAnalysis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using namespace brainy::analysis;

namespace {

/// Analyzes one snippet and returns the profile of variable \p Name
/// (fails the test if it was not bound).
VarProfile profileOf(const std::string &Source, const std::string &Name) {
  FileAnalysis FA = analyzeSource("test.cpp", Source);
  for (const VarProfile &V : FA.Vars)
    if (V.Name == Name)
      return V;
  ADD_FAILURE() << "variable '" << Name << "' was not bound; found "
                << FA.Vars.size() << " vars";
  return {};
}

bool hasOp(const VarProfile &V, Op O) { return V.Ops.count(O) != 0; }
bool requires_(const VarProfile &V, Property P) {
  return V.Required.count(P) != 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// Declaration finder
//===----------------------------------------------------------------------===//

TEST(AnalysisDecl, BindsQualifiedAndBareSpellings) {
  FileAnalysis FA = analyzeSource("t.cpp", "std::vector<int> A;\n"
                                           "map<int, long> B;\n"
                                           "std::unordered_set<int> C;\n");
  ASSERT_EQ(FA.Vars.size(), 3u);
  EXPECT_EQ(FA.Vars[0].Name, "A");
  EXPECT_EQ(FA.Vars[0].Declared, Candidate::Vector);
  EXPECT_EQ(FA.Vars[0].Line, 1u);
  EXPECT_EQ(FA.Vars[0].Spelling, "std::vector<int>");
  EXPECT_EQ(FA.Vars[1].Declared, Candidate::Map);
  EXPECT_EQ(FA.Vars[2].Declared, Candidate::UnorderedSet);
}

TEST(AnalysisDecl, BindsThroughUsingAliasAndTypedef) {
  FileAnalysis FA = analyzeSource(
      "t.cpp", "using Vec = std::vector<int>;\n"
               "typedef std::map<int, int> Index;\n"
               "Vec Values;\n"
               "Index Lookup;\n");
  ASSERT_EQ(FA.Vars.size(), 2u);
  EXPECT_EQ(FA.Vars[0].Name, "Values");
  EXPECT_EQ(FA.Vars[0].Declared, Candidate::Vector);
  EXPECT_EQ(FA.Vars[1].Name, "Lookup");
  EXPECT_EQ(FA.Vars[1].Declared, Candidate::Map);
}

TEST(AnalysisDecl, BindsLegacyHashSpellingsAsUnordered) {
  FileAnalysis FA =
      analyzeSource("t.cpp", "__gnu_cxx::hash_map<int, int> H;\n");
  ASSERT_EQ(FA.Vars.size(), 1u);
  EXPECT_EQ(FA.Vars[0].Declared, Candidate::UnorderedMap);
}

TEST(AnalysisDecl, BindsMultipleDeclaratorsAndNestedTemplates) {
  FileAnalysis FA = analyzeSource(
      "t.cpp", "std::vector<std::pair<int, int>> A, B;\n");
  ASSERT_EQ(FA.Vars.size(), 2u);
  EXPECT_EQ(FA.Vars[0].Name, "A");
  EXPECT_EQ(FA.Vars[1].Name, "B");
  EXPECT_EQ(FA.Vars[1].Declared, Candidate::Vector);
}

TEST(AnalysisDecl, BindsDeclaratorsPastInitializers) {
  // The second declarator must still bind when the first carries a
  // brace, paren or '=' initializer — the finder skips balanced
  // initializer tokens instead of bailing at the first one.
  FileAnalysis FA = analyzeSource(
      "t.cpp", "std::vector<int> A = {1, 2, 3}, B;\n"
               "std::vector<int> C(5), D{7}, E;\n");
  ASSERT_EQ(FA.Vars.size(), 5u);
  EXPECT_EQ(FA.Vars[0].Name, "A");
  EXPECT_EQ(FA.Vars[1].Name, "B");
  EXPECT_EQ(FA.Vars[2].Name, "C");
  EXPECT_EQ(FA.Vars[3].Name, "D");
  EXPECT_EQ(FA.Vars[4].Name, "E");
  EXPECT_EQ(FA.Vars[4].Declared, Candidate::Vector);
}

TEST(AnalysisDecl, BindsThroughTwoStepAliasChain) {
  FileAnalysis FA = analyzeSource(
      "t.cpp", "using Vec = std::vector<int>;\n"
               "using Work = Vec;\n"
               "typedef Work Queue;\n"
               "Work Pending;\n"
               "Queue Backlog;\n");
  ASSERT_EQ(FA.Vars.size(), 2u);
  EXPECT_EQ(FA.Vars[0].Name, "Pending");
  EXPECT_EQ(FA.Vars[0].Declared, Candidate::Vector);
  EXPECT_TRUE(FA.Vars[0].ViaAlias);
  EXPECT_EQ(FA.Vars[1].Name, "Backlog");
  EXPECT_EQ(FA.Vars[1].Declared, Candidate::Vector);
  EXPECT_TRUE(FA.Vars[1].ViaAlias);
}

TEST(AnalysisDecl, DirectDeclarationIsNotViaAlias) {
  FileAnalysis FA = analyzeSource("t.cpp", "std::vector<int> A;\n");
  ASSERT_EQ(FA.Vars.size(), 1u);
  EXPECT_FALSE(FA.Vars[0].ViaAlias);
}

TEST(AnalysisDecl, SkipsFunctionDeclarationsAndForeignNamespaces) {
  FileAnalysis FA = analyzeSource(
      "t.cpp", "std::vector<int> make();\n"
               "std::vector<int> slice(size_t Begin, size_t End);\n"
               "mylib::vector<int> Foreign;\n");
  EXPECT_TRUE(FA.Vars.empty());
}

TEST(AnalysisDecl, UnreadableFileReportsError) {
  FileAnalysis FA = analyzeFile("gone.cpp", "/nonexistent/gone.cpp");
  EXPECT_FALSE(FA.Error.empty());
  EXPECT_TRUE(FA.Vars.empty());
}

//===----------------------------------------------------------------------===//
// Usage collector: op attribution
//===----------------------------------------------------------------------===//

TEST(AnalysisOps, AttributesMemberCallsPerVariable) {
  std::string Src = "std::vector<int> V;\n"
                    "std::map<int, int> M;\n"
                    "void f() {\n"
                    "  V.push_back(1);\n"
                    "  V.pop_back();\n"
                    "  M.insert({1, 2});\n"
                    "  M.find(1);\n"
                    "  M.erase(1);\n"
                    "  V.size(); M.empty();\n"
                    "}\n";
  VarProfile V = profileOf(Src, "V");
  VarProfile M = profileOf(Src, "M");
  EXPECT_TRUE(hasOp(V, Op::PushBack));
  EXPECT_TRUE(hasOp(V, Op::PopBack));
  EXPECT_TRUE(hasOp(V, Op::SizeEmpty));
  EXPECT_FALSE(hasOp(V, Op::Insert));
  EXPECT_TRUE(hasOp(M, Op::Insert));
  EXPECT_TRUE(hasOp(M, Op::Find));
  EXPECT_TRUE(hasOp(M, Op::Erase));
  EXPECT_TRUE(hasOp(M, Op::SizeEmpty));
  EXPECT_FALSE(hasOp(M, Op::PushBack));
}

TEST(AnalysisOps, InsertIsPositionalOnSequences) {
  std::string Src = "std::vector<int> V;\n"
                    "void f() { V.insert(V.begin(), 3); }\n";
  VarProfile V = profileOf(Src, "V");
  EXPECT_TRUE(hasOp(V, Op::InsertAt));
  EXPECT_FALSE(hasOp(V, Op::Insert));
}

TEST(AnalysisOps, SubscriptIsKeyOnMapsIndexOnSequences) {
  std::string Src = "std::map<int, int> M;\n"
                    "std::vector<int> V;\n"
                    "void f() { M[3] = 4; int X = V[0]; }\n";
  EXPECT_TRUE(hasOp(profileOf(Src, "M"), Op::SubscriptKey));
  EXPECT_TRUE(hasOp(profileOf(Src, "V"), Op::SubscriptIndex));
}

TEST(AnalysisOps, RangeForAndIteratorWalk) {
  std::string Src = "std::map<int, int> M;\n"
                    "std::list<int> L;\n"
                    "void f() {\n"
                    "  for (auto &KV : M) use(KV);\n"
                    "  for (auto It = L.begin(); It != L.end(); ++It) use(*It);\n"
                    "}\n";
  EXPECT_TRUE(hasOp(profileOf(Src, "M"), Op::RangeFor));
  EXPECT_TRUE(hasOp(profileOf(Src, "L"), Op::IteratorWalk));
}

TEST(AnalysisOps, AddressOfElementFormsAreCaught) {
  std::string Src = "std::list<int> A;\n"
                    "std::list<int> B;\n"
                    "std::list<int> C;\n"
                    "void f() {\n"
                    "  int *P = &A.front();\n"
                    "  keep(&B.back());\n"
                    "  C.push_back(1);\n"
                    "}\n";
  EXPECT_TRUE(hasOp(profileOf(Src, "A"), Op::AddressOfElement));
  EXPECT_TRUE(hasOp(profileOf(Src, "B"), Op::AddressOfElement));
  EXPECT_FALSE(hasOp(profileOf(Src, "C"), Op::AddressOfElement));
}

TEST(AnalysisOps, EraseInsideIterationLoop) {
  std::string Src = "std::map<int, int> M;\n"
                    "void f() {\n"
                    "  for (auto It = M.begin(); It != M.end();) {\n"
                    "    if (bad(It)) It = M.erase(It); else ++It;\n"
                    "  }\n"
                    "}\n";
  VarProfile M = profileOf(Src, "M");
  EXPECT_TRUE(hasOp(M, Op::EraseInLoop));
  EXPECT_TRUE(hasOp(M, Op::IteratorWalk));
}

TEST(AnalysisOps, FreeSortOverBeginRequiresRandomAccess) {
  std::string Src = "std::vector<int> V;\n"
                    "void f() { std::sort(V.begin(), V.end()); }\n";
  VarProfile V = profileOf(Src, "V");
  EXPECT_TRUE(hasOp(V, Op::Sort));
  EXPECT_TRUE(requires_(V, Property::RandomAccess));
}

TEST(AnalysisOps, SortedQueriesAreAttributed) {
  std::string Src = "std::set<int> S;\n"
                    "void f() { auto It = S.lower_bound(4); }\n";
  EXPECT_TRUE(hasOp(profileOf(Src, "S"), Op::SortedQuery));
}

TEST(AnalysisOps, FreeFindCountIdiomsRecordMembershipNotWalk) {
  // std::find(V.begin(), V.end(), X) is a membership probe, not a walk:
  // it records Find and the inner begin()/end() must NOT contribute
  // IteratorWalk (that would pin OrderedIteration and block upgrades).
  std::string Src =
      "std::vector<int> V;\n"
      "void f() {\n"
      "  bool In = std::find(V.begin(), V.end(), 4) != V.end();\n"
      "  long N = std::count(V.begin(), V.end(), 4);\n"
      "}\n";
  VarProfile V = profileOf(Src, "V");
  EXPECT_TRUE(hasOp(V, Op::Find));
  EXPECT_TRUE(hasOp(V, Op::Count));
  EXPECT_FALSE(hasOp(V, Op::IteratorWalk));
}

TEST(AnalysisOps, MismatchedFreeFindStillWalks) {
  // std::find over two different containers' iterators is not the
  // membership idiom; the begin() side keeps its IteratorWalk.
  std::string Src =
      "std::vector<int> V;\n"
      "std::vector<int> W;\n"
      "void f() { auto It = std::find(V.begin(), W.end(), 4); }\n";
  EXPECT_TRUE(hasOp(profileOf(Src, "V"), Op::IteratorWalk));
}

//===----------------------------------------------------------------------===//
// Property inference table
//===----------------------------------------------------------------------===//

TEST(AnalysisProps, IterationRequiresOrderedIteration) {
  for (Op O : {Op::RangeFor, Op::IteratorWalk}) {
    auto Req = inferProperties(Candidate::Map, {O});
    EXPECT_TRUE(Req.count(Property::OrderedIteration)) << opName(O);
  }
  EXPECT_FALSE(inferProperties(Candidate::Map, {Op::Find})
                   .count(Property::OrderedIteration));
}

TEST(AnalysisProps, TableMapsOpsToProperties) {
  EXPECT_TRUE(inferProperties(Candidate::List, {Op::AddressOfElement})
                  .count(Property::StableReferences));
  EXPECT_TRUE(inferProperties(Candidate::Map, {Op::EraseInLoop})
                  .count(Property::StableErase));
  EXPECT_TRUE(inferProperties(Candidate::Vector, {Op::SubscriptIndex})
                  .count(Property::RandomAccess));
  EXPECT_TRUE(inferProperties(Candidate::Deque, {Op::PushFront})
                  .count(Property::FrontOps));
  EXPECT_TRUE(inferProperties(Candidate::Map, {Op::SubscriptKey})
                  .count(Property::UniqueKeys));
  EXPECT_TRUE(inferProperties(Candidate::Set, {Op::Find})
                  .count(Property::KeyLookup));
  EXPECT_TRUE(inferProperties(Candidate::Set, {Op::SortedQuery})
                  .count(Property::SortedQueries));
}

TEST(AnalysisProps, DeclaredMultiRequiresDuplicateKeys) {
  EXPECT_TRUE(inferProperties(Candidate::Multimap, {})
                  .count(Property::DuplicateKeys));
  EXPECT_FALSE(
      inferProperties(Candidate::Map, {}).count(Property::DuplicateKeys));
}

TEST(AnalysisProps, ConservatismDropsWhatDeclaredTypeLacks) {
  // &V[i] on a vector is transient by construction: the program already
  // works with a container whose references move on growth, so a
  // replacement need not pin them.
  auto Req = inferProperties(Candidate::Vector,
                             {Op::AddressOfElement, Op::SubscriptIndex});
  EXPECT_FALSE(Req.count(Property::StableReferences));
  EXPECT_TRUE(Req.count(Property::RandomAccess));
  // Iterating a declared-unordered container cannot demand ordered
  // iteration of a replacement.
  EXPECT_FALSE(inferProperties(Candidate::UnorderedMap, {Op::RangeFor})
                   .count(Property::OrderedIteration));
}

//===----------------------------------------------------------------------===//
// Legality verdicts
//===----------------------------------------------------------------------===//

TEST(AnalysisLegality, IteratedMapRejectsUnorderedMap) {
  // The acceptance fixture: a std::map iterated in order must report
  // unordered_map illegal with exactly this reason.
  std::string Src = "std::map<int, int> M;\n"
                    "void f() { for (auto &KV : M) use(KV); }\n";
  VarProfile M = profileOf(Src, "M");
  const Verdict &V = M.verdictFor(Candidate::UnorderedMap);
  EXPECT_EQ(V.Kind, Legality::Illegal);
  EXPECT_EQ(V.Reason, "order-dependent iteration");
  EXPECT_EQ(M.verdictFor(Candidate::SplayMap).Kind, Legality::Legal);
  EXPECT_EQ(M.verdictFor(Candidate::FlatMap).Kind, Legality::Legal);
}

TEST(AnalysisLegality, UniterationMapAllowsUnorderedMap) {
  std::string Src = "std::map<int, int> M;\n"
                    "void f() { M[1] = 2; if (M.count(1)) M.erase(1); }\n";
  VarProfile M = profileOf(Src, "M");
  EXPECT_EQ(M.verdictFor(Candidate::UnorderedMap).Kind, Legality::Legal);
}

TEST(AnalysisLegality, ShapeMismatchIsIllegalBothWays) {
  std::string Src = "std::map<int, int> M;\nstd::vector<int> V;\n";
  EXPECT_EQ(profileOf(Src, "M").verdictFor(Candidate::Vector).Kind,
            Legality::Illegal);
  EXPECT_EQ(profileOf(Src, "V").verdictFor(Candidate::Map).Kind,
            Legality::Illegal);
}

TEST(AnalysisLegality, CrossFamilySwapIsUnknownNotLegal) {
  // Table 1's order-oblivious vector→set rows need interface rewriting;
  // the static verdict stays conservative.
  std::string Src = "std::vector<int> V;\nvoid f() { V.push_back(1); }\n";
  const Verdict &Vd = profileOf(Src, "V").verdictFor(Candidate::Set);
  EXPECT_EQ(Vd.Kind, Legality::Unknown);
  EXPECT_FALSE(Vd.Reason.empty());
}

TEST(AnalysisLegality, SubscriptKeyRejectsMultimap) {
  std::string Src = "std::map<int, int> M;\nvoid f() { M[1] = 2; }\n";
  EXPECT_EQ(profileOf(Src, "M").verdictFor(Candidate::Multimap).Kind,
            Legality::Illegal);
}

TEST(AnalysisLegality, StableReferencesRejectGrowingStorage) {
  std::string Src = "std::list<int> L;\n"
                    "void f() { keep(&L.front()); L.push_back(1); }\n";
  VarProfile L = profileOf(Src, "L");
  ASSERT_TRUE(requires_(L, Property::StableReferences));
  EXPECT_EQ(L.verdictFor(Candidate::Vector).Kind, Legality::Illegal);
  EXPECT_EQ(L.verdictFor(Candidate::Deque).Kind, Legality::Illegal);
}

TEST(AnalysisLegality, DeclaredTypeIsAlwaysSelfConsistent) {
  // The conservatism rule makes the declared container legal for its own
  // profile on every input (what `brainy check` verifies in CI).
  std::string Src =
      "std::vector<int> V;\n"
      "std::unordered_map<int, int> U;\n"
      "std::multiset<int> MS;\n"
      "void f() {\n"
      "  keep(&V[0]);\n"
      "  for (auto &KV : U) use(KV);\n"
      "  std::sort(V.begin(), V.end());\n"
      "  MS.insert(3);\n"
      "}\n";
  std::vector<FileAnalysis> Files = {analyzeSource("t.cpp", Src)};
  EXPECT_EQ(Files[0].Vars.size(), 3u);
  EXPECT_TRUE(selfConsistencyViolations(Files).empty());
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(AnalysisDeterminism, JsonIsByteIdenticalAcrossRunsAndJobs) {
  std::vector<std::pair<std::string, std::string>> Sources;
  for (int F = 0; F != 12; ++F) {
    std::string Src = "std::map<int, int> M" + std::to_string(F) + ";\n" +
                      "std::vector<int> V" + std::to_string(F) + ";\n" +
                      "void f() {\n"
                      "  for (auto &KV : M" + std::to_string(F) + ") use(KV);\n"
                      "  V" + std::to_string(F) + ".push_back(1);\n"
                      "}\n";
    Sources.emplace_back("file" + std::to_string(F) + ".cpp", Src);
  }
  std::string Baseline = renderJson(analyzeSources(Sources, 1));
  for (unsigned Jobs : {1u, 2u, 3u, 7u}) {
    for (int Run = 0; Run != 2; ++Run) {
      EXPECT_EQ(renderJson(analyzeSources(Sources, Jobs)), Baseline)
          << "jobs=" << Jobs << " run=" << Run;
    }
  }
  std::string Text = renderText(analyzeSources(Sources, 4));
  EXPECT_EQ(Text, renderText(analyzeSources(Sources, 1)));
}

TEST(AnalysisDeterminism, ReportsMentionAcceptanceVerdictSpelling) {
  std::string Src = "std::map<int, int> M;\n"
                    "void f() { for (auto &KV : M) use(KV); }\n";
  std::vector<FileAnalysis> Files = {analyzeSource("t.cpp", Src)};
  std::string Text = renderText(Files);
  EXPECT_NE(Text.find("unordered_map: illegal(order-dependent iteration)"),
            std::string::npos);
  std::string Json = renderJson(Files);
  EXPECT_NE(Json.find("\"unordered_map\": {\"legality\": \"illegal\", "
                      "\"reason\": \"order-dependent iteration\"}"),
            std::string::npos);
}
