//===- tests/machine_test.cpp - microarchitecture simulator tests ---------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "machine/BranchPredictor.h"
#include "machine/CacheSim.h"
#include "machine/EventBuffer.h"
#include "machine/MachineModel.h"
#include "machine/SimAllocator.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

using namespace brainy;

//===----------------------------------------------------------------------===//
// SimAllocator
//===----------------------------------------------------------------------===//

TEST(SimAllocatorTest, AddressesAreAlignedAndDisjoint) {
  SimAllocator A(0x1000);
  uint64_t P1 = A.allocate(24);
  uint64_t P2 = A.allocate(24);
  EXPECT_EQ(P1 % 16, 0u);
  EXPECT_EQ(P2 % 16, 0u);
  EXPECT_GE(P2, P1 + 24);
}

TEST(SimAllocatorTest, FreeListReuseIsLifo) {
  SimAllocator A;
  uint64_t P1 = A.allocate(32);
  uint64_t P2 = A.allocate(32);
  A.release(P1, 32);
  A.release(P2, 32);
  EXPECT_EQ(A.allocate(32), P2); // most recently freed first
  EXPECT_EQ(A.allocate(32), P1);
}

TEST(SimAllocatorTest, DistinctSizeClassesDoNotMix) {
  SimAllocator A;
  uint64_t P1 = A.allocate(16);
  A.release(P1, 16);
  uint64_t P2 = A.allocate(48);
  EXPECT_NE(P1, P2);
}

TEST(SimAllocatorTest, LiveAndPeakTracking) {
  SimAllocator A;
  uint64_t P1 = A.allocate(16);
  uint64_t P2 = A.allocate(16);
  EXPECT_EQ(A.liveBytes(), 32u);
  EXPECT_EQ(A.peakBytes(), 32u);
  A.release(P1, 16);
  EXPECT_EQ(A.liveBytes(), 16u);
  EXPECT_EQ(A.peakBytes(), 32u);
  A.release(P2, 16);
  EXPECT_EQ(A.liveBytes(), 0u);
  EXPECT_EQ(A.allocationCount(), 2u);
}

TEST(SimAllocatorTest, SizesRoundUpTo16) {
  SimAllocator A;
  A.allocate(1);
  EXPECT_EQ(A.liveBytes(), 16u);
}

//===----------------------------------------------------------------------===//
// CacheSim
//===----------------------------------------------------------------------===//

TEST(CacheSimTest, ColdMissThenHit) {
  CacheSim C(CacheGeometry{1024, 2, 64});
  EXPECT_FALSE(C.access(0x100));
  EXPECT_TRUE(C.access(0x100));
  EXPECT_TRUE(C.access(0x13f)); // same 64B block
  EXPECT_EQ(C.misses(), 1u);
  EXPECT_EQ(C.hits(), 2u);
}

TEST(CacheSimTest, LruEvictionWithinSet) {
  // 2-way, 64B blocks, 1024B total -> 8 sets. Three blocks mapping to the
  // same set exceed the ways and evict the least recently used.
  CacheSim C(CacheGeometry{1024, 2, 64});
  uint64_t SetStride = 8 * 64;
  uint64_t A = 0, B = SetStride, D = 2 * SetStride;
  C.access(A);
  C.access(B);
  C.access(A);      // A most recent
  C.access(D);      // evicts B
  EXPECT_TRUE(C.access(A));
  EXPECT_FALSE(C.access(B)); // was evicted
}

TEST(CacheSimTest, CapacityBehaviour) {
  CacheSim C(CacheGeometry{32 * 1024, 8, 64});
  // A working set the size of the cache stays resident.
  for (int Round = 0; Round != 3; ++Round)
    for (uint64_t Addr = 0; Addr < 32 * 1024; Addr += 64)
      C.access(Addr);
  double Rate = C.missRate();
  EXPECT_LT(Rate, 0.34); // only the cold round misses
  // A working set 8x the cache thrashes.
  C.reset();
  for (int Round = 0; Round != 3; ++Round)
    for (uint64_t Addr = 0; Addr < 256 * 1024; Addr += 64)
      C.access(Addr);
  EXPECT_GT(C.missRate(), 0.99);
}

TEST(CacheSimTest, AccessRangeCountsSpannedBlocks) {
  CacheSim C(CacheGeometry{1024, 2, 64});
  EXPECT_EQ(C.accessRange(60, 8), 2u); // spans two blocks, both cold
  EXPECT_EQ(C.accessRange(60, 8), 0u); // both warm now
  EXPECT_EQ(C.accessRange(200, 0), 1u); // zero bytes touch one block
}

TEST(CacheSimTest, FillWarmsWithoutCounting) {
  CacheSim C(CacheGeometry{1024, 2, 64});
  C.fill(0x400);
  EXPECT_EQ(C.accesses(), 0u);
  EXPECT_TRUE(C.access(0x400));
  EXPECT_EQ(C.hits(), 1u);
}

TEST(CacheSimTest, ResetClearsContents) {
  CacheSim C(CacheGeometry{1024, 2, 64});
  C.access(0x40);
  C.reset();
  EXPECT_EQ(C.accesses(), 0u);
  EXPECT_FALSE(C.access(0x40));
}

//===----------------------------------------------------------------------===//
// BranchPredictor
//===----------------------------------------------------------------------===//

TEST(BranchPredictorTest, LearnsBiasedBranch) {
  BranchPredictor P;
  // Warm up: always taken.
  for (int I = 0; I != 10; ++I)
    P.observe(BranchSite::ListWalkLoop, true);
  uint64_t Before = P.mispredicts();
  for (int I = 0; I != 100; ++I)
    P.observe(BranchSite::ListWalkLoop, true);
  EXPECT_EQ(P.mispredicts(), Before); // fully predicted
}

TEST(BranchPredictorTest, RareTakenBranchMispredicts) {
  // The paper's key signal: a rarely-taken branch (vector's resize check)
  // mispredicts on each taken resolution (Figure 6).
  BranchPredictor P;
  unsigned TakenMisses = 0;
  for (int I = 0; I != 1000; ++I) {
    bool Taken = I % 100 == 99;
    bool Wrong = P.observe(BranchSite::VectorResizeCheck, Taken);
    if (Taken && Wrong)
      ++TakenMisses;
  }
  EXPECT_EQ(TakenMisses, 10u); // every rare taken is a miss
  EXPECT_LT(P.mispredictRate(), 0.05);
}

TEST(BranchPredictorTest, AlternatingDithers) {
  BranchPredictor P;
  for (int I = 0; I != 1000; ++I)
    P.observe(BranchSite::TreeCompareLeft, I % 2 == 0);
  EXPECT_GT(P.mispredictRate(), 0.4);
}

TEST(BranchPredictorTest, PerSiteCountsAndReset) {
  BranchPredictor P;
  P.observe(BranchSite::SearchHit, true); // weakly-NT start -> mispredict
  EXPECT_EQ(P.mispredictsAt(BranchSite::SearchHit), 1u);
  EXPECT_EQ(P.mispredictsAt(BranchSite::ListWalkLoop), 0u);
  P.reset();
  EXPECT_EQ(P.branches(), 0u);
  EXPECT_EQ(P.mispredictsAt(BranchSite::SearchHit), 0u);
}

//===----------------------------------------------------------------------===//
// MachineModel
//===----------------------------------------------------------------------===//

TEST(MachineModelTest, InstructionCycleAccounting) {
  MachineConfig Cfg;
  Cfg.BaseCpi = 2.0;
  MachineModel M(Cfg);
  M.onInstructions(10);
  EXPECT_DOUBLE_EQ(M.cycles(), 20.0);
  EXPECT_EQ(M.counters().Instructions, 10u);
}

TEST(MachineModelTest, MissHierarchyCosts) {
  MachineConfig Cfg;
  Cfg.L1HitCycles = 3;
  Cfg.L2HitCycles = 10;
  Cfg.MemoryCycles = 100;
  Cfg.MissExposure = 1.0;
  Cfg.PrefetchDepth = 0;
  MachineModel M(Cfg);
  M.onAccess(0x1000, 8); // cold: L1+L2 miss -> memory
  EXPECT_DOUBLE_EQ(M.cycles(), 3 + 10 + 100);
  double After = M.cycles();
  M.onAccess(0x2000, 8); // different block, not sequential: full miss again
  EXPECT_DOUBLE_EQ(M.cycles() - After, 113);
  After = M.cycles();
  M.onAccess(0x1000, 8); // L1 hit now (non-streaming: far block)
  EXPECT_DOUBLE_EQ(M.cycles() - After, 3);
}

TEST(MachineModelTest, SequentialScanIsPrefetchedAndStreamed) {
  MachineConfig Cfg = MachineConfig::core2();
  MachineModel Seq(Cfg), Rand(Cfg);
  // 512 KB scan: sequential should be far cheaper than random touches.
  for (uint64_t I = 0; I != 8192; ++I)
    Seq.onAccess(I * 64, 8);
  uint64_t Lcg = 12345;
  for (uint64_t I = 0; I != 8192; ++I) {
    Lcg = Lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    Rand.onAccess((Lcg >> 20) % (512 * 1024), 8);
  }
  EXPECT_LT(Seq.cycles() * 5, Rand.cycles());
}

TEST(MachineModelTest, MispredictPenaltyCharged) {
  MachineConfig Cfg;
  Cfg.BaseCpi = 0;
  Cfg.MispredictPenalty = 50;
  MachineModel M(Cfg);
  // Weakly-not-taken start: first taken mispredicts.
  M.onBranch(BranchSite::SearchHit, true);
  EXPECT_DOUBLE_EQ(M.cycles(), 50.0);
}

TEST(MachineModelTest, AllocCostsAndCounters) {
  MachineConfig Cfg;
  Cfg.BaseCpi = 1.0;
  Cfg.AllocInstructions = 80;
  Cfg.FreeInstructions = 50;
  MachineModel M(Cfg);
  M.onAlloc(64);
  M.onFree(64);
  HardwareCounters C = M.counters();
  EXPECT_EQ(C.Allocations, 1u);
  EXPECT_EQ(C.Frees, 1u);
  EXPECT_DOUBLE_EQ(C.Cycles, 130.0);
}

TEST(MachineModelTest, ResetZeroesEverything) {
  MachineModel M(MachineConfig::core2());
  M.onAccess(0x10, 8);
  M.onBranch(BranchSite::SearchHit, true);
  M.onInstructions(5);
  M.reset();
  HardwareCounters C = M.counters();
  EXPECT_EQ(C.Instructions, 0u);
  EXPECT_EQ(C.L1Accesses, 0u);
  EXPECT_EQ(C.Branches, 0u);
  EXPECT_DOUBLE_EQ(C.Cycles, 0.0);
}

TEST(MachineModelTest, PresetsMatchPaperFigure7) {
  MachineConfig C2 = MachineConfig::core2();
  MachineConfig AT = MachineConfig::atom();
  EXPECT_EQ(C2.L1.SizeBytes, 32u * 1024);
  EXPECT_EQ(C2.L2.SizeBytes, 4u * 1024 * 1024);
  EXPECT_EQ(AT.L2.SizeBytes, 512u * 1024);
  EXPECT_DOUBLE_EQ(C2.ClockGhz, 2.4);
  EXPECT_DOUBLE_EQ(AT.ClockGhz, 1.6);
  // The in-order Atom exposes misses fully; the OoO Core2 overlaps them.
  EXPECT_GT(AT.MissExposure, C2.MissExposure);
}

TEST(MachineModelTest, ArchitecturesRankWorkloadsDifferently) {
  // A pointer-chase-heavy vs a compute-heavy event mix should cost
  // differently relative to each other on the two presets.
  auto RunChase = [](const MachineConfig &Cfg) {
    MachineModel M(Cfg);
    uint64_t Lcg = 1;
    for (int I = 0; I != 20000; ++I) {
      Lcg = Lcg * 6364136223846793005ULL + 1;
      M.onAccess((Lcg >> 16) % (2 * 1024 * 1024), 8);
    }
    return M.cycles();
  };
  auto RunCompute = [](const MachineConfig &Cfg) {
    MachineModel M(Cfg);
    M.onInstructions(400000);
    return M.cycles();
  };
  MachineConfig C2 = MachineConfig::core2(), AT = MachineConfig::atom();
  double RatioChase = RunChase(AT) / RunChase(C2);
  double RatioCompute = RunCompute(AT) / RunCompute(C2);
  EXPECT_GT(RatioChase, 1.0);
  EXPECT_GT(RatioCompute, 1.0);
  EXPECT_NE(RatioChase, RatioCompute);
}

TEST(MachineModelTest, SecondsUsesClock) {
  MachineConfig Cfg;
  Cfg.ClockGhz = 2.0;
  MachineModel M(Cfg);
  M.onInstructions(2000000000ULL); // 2e9 instr * 1.0 CPI = 2e9 cycles
  EXPECT_NEAR(M.seconds(), 1.0, 1e-9);
}

//===----------------------------------------------------------------------===//
// Encoded event stream (DESIGN.md §12)
//===----------------------------------------------------------------------===//

namespace {

/// Plays a deterministic mixed event sequence into \p M, either through
/// the per-event virtuals or through its event buffer. The mix is chosen
/// to cross every onBatch path: long same-block runs (the coalesced MRU
/// fast path), runs broken by branches and instruction bursts, sequential
/// scans (prefetch fills), random touches, and alloc/free traffic.
template <typename AccessFn, typename BranchFn, typename InstrFn,
          typename AllocFn, typename FreeFn>
void playMixedStream(AccessFn Access, BranchFn Branch, InstrFn Instr,
                     AllocFn Alloc, FreeFn Free) {
  uint64_t Lcg = 42;
  for (int Round = 0; Round != 64; ++Round) {
    // Repeated touches of one block — coalescable, in varying run lengths.
    uint64_t Base = 0x100000 + Round * 4096;
    for (int I = 0; I != (Round % 7) + 1; ++I)
      Access(Base + (I % 8) * 4, 4);
    // A branch mid-run ends one coalesced run without changing LastBlock.
    Branch(BranchSite::SearchHit, (Round & 3) != 0);
    for (int I = 0; I != 5; ++I)
      Access(Base + 16, 8);
    // Sequential scan: prefetch + streaming-hit classification.
    for (int I = 0; I != 32; ++I)
      Access(0x400000 + Round * 2048 + I * 64, 8);
    Instr(Round * 3 + 1);
    // Random far touches: miss hierarchy + LRU victim churn.
    for (int I = 0; I != 8; ++I) {
      Lcg = Lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      Access((Lcg >> 16) % (8 * 1024 * 1024), 8);
    }
    Alloc(64 + Round);
    if (Round & 1)
      Free(64 + Round - 1);
    // Straddling access: first/last bytes in different blocks.
    Access(0x200000 + Round * 64 + 60, 16);
  }
}

} // namespace

TEST(EventStreamTest, BatchedDeliveryIsBitIdenticalToDirectCalls) {
  for (const MachineConfig &Cfg :
       {MachineConfig::core2(), MachineConfig::atom()}) {
    MachineModel Direct(Cfg), Batched(Cfg);
    playMixedStream(
        [&](uint64_t A, uint32_t B) { Direct.onAccess(A, B); },
        [&](BranchSite S, bool T) { Direct.onBranch(S, T); },
        [&](uint64_t N) { Direct.onInstructions(N); },
        [&](uint64_t B) { Direct.onAlloc(B); },
        [&](uint64_t B) { Direct.onFree(B); });

    EventBuffer *Buf = Batched.eventBuffer();
    ASSERT_NE(Buf, nullptr);
    playMixedStream(
        [&](uint64_t A, uint32_t B) { Buf->access(A, B); },
        [&](BranchSite S, bool T) { Buf->branch(S, T); },
        [&](uint64_t N) { Buf->instructions(N); },
        [&](uint64_t B) { Buf->alloc(B); },
        [&](uint64_t B) { Buf->free(B); });
    Batched.flushEvents();

    // Bit-identical, not approximately equal: the batch drain (including
    // the coalesced repeat-run path) must replay the exact arithmetic of
    // the per-event calls.
    HardwareCounters D = Direct.counters(), B = Batched.counters();
    EXPECT_EQ(D.Cycles, B.Cycles) << Cfg.Name;
    EXPECT_EQ(D.Instructions, B.Instructions) << Cfg.Name;
    EXPECT_EQ(D.L1Accesses, B.L1Accesses) << Cfg.Name;
    EXPECT_EQ(D.L1Misses, B.L1Misses) << Cfg.Name;
    EXPECT_EQ(D.L2Accesses, B.L2Accesses) << Cfg.Name;
    EXPECT_EQ(D.L2Misses, B.L2Misses) << Cfg.Name;
    EXPECT_EQ(D.Branches, B.Branches) << Cfg.Name;
    EXPECT_EQ(D.BranchMispredicts, B.BranchMispredicts) << Cfg.Name;
    EXPECT_EQ(D.Allocations, B.Allocations) << Cfg.Name;
    EXPECT_EQ(D.Frees, B.Frees) << Cfg.Name;
    EXPECT_EQ(Direct.cycles(), Batched.cycles()) << Cfg.Name;
  }
}

TEST(EventStreamTest, InterleavedDirectAndBufferedCallsStayOrdered) {
  // A direct virtual call must observe everything buffered before it:
  // the per-event entry points drain the pending buffer first.
  MachineConfig Cfg = MachineConfig::core2();
  MachineModel Direct(Cfg), Mixed(Cfg);
  for (int I = 0; I != 1000; ++I) {
    Direct.onAccess(0x1000 + (I % 16) * 64, 8);
    Direct.onBranch(BranchSite::SearchHit, I & 1);
  }
  EventBuffer *Buf = Mixed.eventBuffer();
  for (int I = 0; I != 1000; ++I) {
    if (I % 3 == 0)
      Mixed.onAccess(0x1000 + (I % 16) * 64, 8);
    else
      Buf->access(0x1000 + (I % 16) * 64, 8);
    // Direct call with records pending: must drain, then step.
    Mixed.onBranch(BranchSite::SearchHit, I & 1);
  }
  Mixed.flushEvents();
  EXPECT_EQ(Direct.cycles(), Mixed.cycles());
  EXPECT_EQ(Direct.counters().BranchMispredicts, Mixed.counters().BranchMispredicts);
}

TEST(EventStreamTest, OpRecordsReachTheListenerInOrder) {
  struct Recorder final : OpListener {
    std::vector<std::tuple<ContainerOp, bool, uint64_t, uint64_t>> Ops;
    void onOp(ContainerOp Op, bool Found, uint64_t Cost,
              uint64_t SizeAfter) override {
      Ops.emplace_back(Op, Found, Cost, SizeAfter);
    }
  };
  Recorder Direct, Buffered;

  MachineModel M(MachineConfig::core2());
  M.setOpListener(&Buffered);
  EventBuffer *Buf = M.eventBuffer();
  for (uint64_t I = 0; I != 300; ++I) {
    ContainerOp Op = static_cast<ContainerOp>(
        I % static_cast<uint64_t>(ContainerOp::NumOps));
    bool Found = (I % 3) == 0;
    uint64_t Cost = I * 7 + 1;
    Direct.onOp(Op, Found, Cost, I);
    Buf->op(Op, Found, Cost, I);
  }
  M.flushEvents();
  EXPECT_EQ(Direct.Ops, Buffered.Ops);
}

TEST(EventStreamTest, BufferAutoFlushesWhenFull) {
  // More events than CapacityWords: appends must self-flush, and nothing
  // may be dropped or reordered across the flush boundary.
  MachineConfig Cfg = MachineConfig::core2();
  MachineModel Direct(Cfg), Batched(Cfg);
  EventBuffer *Buf = Batched.eventBuffer();
  const int N = 3 * static_cast<int>(EventBuffer::CapacityWords);
  for (int I = 0; I != N; ++I) {
    Direct.onAccess(0x8000 + (I % 512) * 64, 8);
    Buf->access(0x8000 + (I % 512) * 64, 8);
  }
  Batched.flushEvents();
  EXPECT_EQ(Direct.cycles(), Batched.cycles());
  EXPECT_EQ(Direct.counters().L1Misses, Batched.counters().L1Misses);
}
