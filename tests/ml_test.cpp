//===- tests/ml_test.cpp - neural network / GA feature selection ----------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "ml/GaSelect.h"
#include "ml/NeuralNet.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace brainy;

//===----------------------------------------------------------------------===//
// Normalizer
//===----------------------------------------------------------------------===//

TEST(NormalizerTest, ZScoresColumns) {
  Normalizer N;
  std::vector<std::vector<double>> Data = {{1, 10}, {3, 10}, {5, 10}};
  N.fit(Data);
  EXPECT_DOUBLE_EQ(N.means()[0], 3.0);
  EXPECT_DOUBLE_EQ(N.means()[1], 10.0);
  // Constant column gets std 1 (maps to 0).
  EXPECT_DOUBLE_EQ(N.stds()[1], 1.0);
  std::vector<double> Row = {5, 10};
  N.apply(Row);
  EXPECT_GT(Row[0], 0.0);
  EXPECT_DOUBLE_EQ(Row[1], 0.0);
  N.applyAll(Data);
  double Sum = Data[0][0] + Data[1][0] + Data[2][0];
  EXPECT_NEAR(Sum, 0.0, 1e-12);
}

TEST(NormalizerTest, StringRoundTrip) {
  Normalizer N;
  N.fit({{1, 2, 3}, {4, 5, 6}, {7, 8, 10}});
  Normalizer M;
  ASSERT_TRUE(Normalizer::fromString(N.toString(), M));
  ASSERT_EQ(M.dimension(), 3u);
  for (unsigned I = 0; I != 3; ++I) {
    EXPECT_DOUBLE_EQ(M.means()[I], N.means()[I]);
    EXPECT_DOUBLE_EQ(M.stds()[I], N.stds()[I]);
  }
  Normalizer Bad;
  EXPECT_FALSE(Normalizer::fromString("not-a-number", Bad));
}

TEST(DatasetTest, Basics) {
  Dataset D;
  EXPECT_TRUE(D.empty());
  EXPECT_EQ(D.numClasses(), 0u);
  D.add({1, 2}, 0);
  D.add({3, 4}, 2);
  EXPECT_EQ(D.size(), 2u);
  EXPECT_EQ(D.dimension(), 2u);
  EXPECT_EQ(D.numClasses(), 3u);
}

//===----------------------------------------------------------------------===//
// NeuralNet
//===----------------------------------------------------------------------===//

TEST(NeuralNetTest, ProbabilitiesFormDistribution) {
  NeuralNet Net(4, 8, 3, 7);
  std::vector<double> P = Net.predictProba({0.1, -0.2, 0.3, 0.4});
  ASSERT_EQ(P.size(), 3u);
  double Sum = 0;
  for (double V : P) {
    EXPECT_GT(V, 0.0);
    Sum += V;
  }
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

TEST(NeuralNetTest, LearnsXor) {
  // XOR is not linearly separable: exercises the hidden layer.
  Dataset D;
  for (int A = 0; A != 2; ++A)
    for (int B = 0; B != 2; ++B)
      for (int Rep = 0; Rep != 10; ++Rep)
        D.add({static_cast<double>(A), static_cast<double>(B)},
              static_cast<unsigned>(A ^ B));
  NetConfig Cfg;
  Cfg.HiddenUnits = 8;
  Cfg.Epochs = 400;
  Cfg.LearningRate = 0.2;
  NeuralNet Net = trainNetwork(D, Cfg);
  EXPECT_DOUBLE_EQ(Net.accuracy(D), 1.0);
}

TEST(NeuralNetTest, LearnsGaussianBlobs) {
  Dataset D;
  Rng R(5);
  auto Gauss = [&R]() {
    double U1 = R.nextDouble() + 1e-12, U2 = R.nextDouble();
    return std::sqrt(-2 * std::log(U1)) * std::cos(6.2831853 * U2);
  };
  for (int I = 0; I != 300; ++I) {
    unsigned Label = I % 3;
    double CX = Label == 0 ? -3 : Label == 1 ? 0 : 3;
    D.add({CX + Gauss() * 0.5, Gauss() * 0.5}, Label);
  }
  NetConfig Cfg;
  Cfg.Epochs = 100;
  NeuralNet Net = trainNetwork(D, Cfg);
  EXPECT_GT(Net.accuracy(D), 0.95);
}

TEST(NeuralNetTest, DeterministicTraining) {
  Dataset D;
  Rng R(9);
  for (int I = 0; I != 100; ++I) {
    double X = R.nextDouble() * 2 - 1;
    D.add({X, X * X}, X > 0 ? 1u : 0u);
  }
  NetConfig Cfg;
  Cfg.Epochs = 30;
  NeuralNet A = trainNetwork(D, Cfg);
  NeuralNet B = trainNetwork(D, Cfg);
  EXPECT_EQ(A.toString(), B.toString());
}

TEST(NeuralNetTest, SerializationRoundTrip) {
  Dataset D;
  for (int I = 0; I != 40; ++I)
    D.add({I * 0.1, 1.0 - I * 0.05}, I % 2);
  NetConfig Cfg;
  Cfg.Epochs = 20;
  NeuralNet Net = trainNetwork(D, Cfg);
  NeuralNet Loaded;
  ASSERT_TRUE(NeuralNet::fromString(Net.toString(), Loaded));
  EXPECT_EQ(Loaded.inputs(), Net.inputs());
  EXPECT_EQ(Loaded.outputs(), Net.outputs());
  for (int I = 0; I != 10; ++I) {
    std::vector<double> X = {I * 0.2, I * -0.1};
    EXPECT_EQ(Net.predict(X), Loaded.predict(X));
    std::vector<double> PA = Net.predictProba(X);
    std::vector<double> PB = Loaded.predictProba(X);
    for (size_t J = 0; J != PA.size(); ++J)
      EXPECT_DOUBLE_EQ(PA[J], PB[J]);
  }
  NeuralNet Bad;
  EXPECT_FALSE(NeuralNet::fromString("0 0 0", Bad));
  EXPECT_FALSE(NeuralNet::fromString("garbage", Bad));
}

TEST(NeuralNetTest, NumClassesOverride) {
  Dataset D;
  D.add({1.0}, 0);
  D.add({2.0}, 0); // only class 0 present
  NetConfig Cfg;
  Cfg.Epochs = 5;
  NeuralNet Net = trainNetwork(D, Cfg, 4);
  EXPECT_EQ(Net.outputs(), 4u);
}

TEST(NeuralNetTest, EpochLossDecreases) {
  Dataset D;
  Rng R(21);
  for (int I = 0; I != 200; ++I) {
    double X = R.nextDouble() * 4 - 2;
    D.add({X}, X > 0 ? 1u : 0u);
  }
  NeuralNet Net(1, 6, 2, 3);
  Rng Shuffler(1);
  double First = Net.trainEpoch(D, 0.1, 0.9, 0, Shuffler);
  double Last = First;
  for (int E = 0; E != 30; ++E)
    Last = Net.trainEpoch(D, 0.1, 0.9, 0, Shuffler);
  EXPECT_LT(Last, First * 0.5);
}

//===----------------------------------------------------------------------===//
// GA feature selection
//===----------------------------------------------------------------------===//

TEST(GaSelectTest, FindsInformativeFeature) {
  // Feature 2 fully determines the label; features 0,1,3 are noise.
  Dataset D;
  Rng R(33);
  for (int I = 0; I != 240; ++I) {
    double Signal = R.nextDouble() * 2 - 1;
    D.add({R.nextDouble(), R.nextDouble(), Signal, R.nextDouble()},
          Signal > 0 ? 1u : 0u);
  }
  GaConfig Cfg;
  Cfg.Population = 8;
  Cfg.Generations = 5;
  Cfg.Net.Epochs = 25;
  GaResult Result = selectFeatures(D, Cfg);
  ASSERT_EQ(Result.Weights.size(), 4u);
  ASSERT_EQ(Result.Ranked.size(), 4u);
  EXPECT_EQ(Result.Ranked.front(), 2u);
  EXPECT_GT(Result.Fitness, 0.85);
}

TEST(GaSelectTest, DeterministicForSeed) {
  Dataset D;
  Rng R(44);
  for (int I = 0; I != 60; ++I)
    D.add({R.nextDouble(), R.nextDouble()}, I % 2);
  GaConfig Cfg;
  Cfg.Population = 6;
  Cfg.Generations = 3;
  Cfg.Net.Epochs = 10;
  GaResult A = selectFeatures(D, Cfg);
  GaResult B = selectFeatures(D, Cfg);
  EXPECT_EQ(A.Weights, B.Weights);
  EXPECT_EQ(A.Ranked, B.Ranked);
}

TEST(GaSelectTest, TinyDatasetFallsBack) {
  Dataset D;
  D.add({1, 2}, 0);
  GaResult Result = selectFeatures(D, GaConfig());
  ASSERT_EQ(Result.Weights.size(), 2u);
  EXPECT_DOUBLE_EQ(Result.Weights[0], 1.0);
}

TEST(GaSelectTest, WeightsStayInRange) {
  Dataset D;
  Rng R(55);
  for (int I = 0; I != 100; ++I)
    D.add({R.nextDouble(), R.nextDouble(), R.nextDouble()}, I % 3);
  GaConfig Cfg;
  Cfg.Population = 6;
  Cfg.Generations = 4;
  Cfg.Net.Epochs = 10;
  GaResult Result = selectFeatures(D, Cfg, 3);
  for (double W : Result.Weights) {
    EXPECT_GE(W, 0.0);
    EXPECT_LE(W, 1.0);
  }
}
