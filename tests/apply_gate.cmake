# tests/apply_gate.cmake - end-to-end gate for `brainy apply`
#
# Part of the Brainy reproduction of PLDI 2011's "Brainy".
#
# Drives the full adoption pipeline over the bundled case studies
# (examples/apply): plan with --dry-run --json, demand zero rejections
# and the cross-family vector -> unordered_set upgrade, write the
# .brainy.cpp siblings, compile original and rewritten with the same
# compiler, run both and byte-compare stdout, and finally prove
# idempotence by re-applying in place and byte-comparing the file.
#
# Inputs: -DBRAINY=<brainy binary> -DSRC_DIR=<examples/apply>
#         -DCXX=<compiler> -DWORK_DIR=<scratch dir>
# Usage:  cmake -DBRAINY=... -DSRC_DIR=... -DCXX=... -DWORK_DIR=... \
#               -P apply_gate.cmake

foreach(Var BRAINY SRC_DIR CXX WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "apply_gate: -D${Var}=... is required")
  endif()
endforeach()

set(Cases xalan_busylist chord_pending relipmoc_blocks raytrace_groups)
set(RewrittenCases xalan_busylist chord_pending relipmoc_blocks)

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
foreach(Case ${Cases})
  configure_file("${SRC_DIR}/${Case}.cpp" "${WORK_DIR}/${Case}.cpp" COPYONLY)
  list(APPEND CaseFiles "${WORK_DIR}/${Case}.cpp")
endforeach()

# --- Plan: --dry-run --json must succeed with zero rejections ----------------
execute_process(
  COMMAND "${BRAINY}" apply --dry-run --json ${CaseFiles}
  OUTPUT_VARIABLE Json RESULT_VARIABLE Rc ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "apply --dry-run --json failed (rc=${Rc}): ${Err}")
endif()
if(NOT Json MATCHES "\"rejected\":0}")
  message(FATAL_ERROR "apply gate: verifier rejections in plan:\n${Json}")
endif()

# The headline Table 1 upgrade and the cross-family checked upgrade must
# both be planned; the iterated list must be kept.
if(NOT Json MATCHES "\"to\":\"std::unordered_map\",\"status\":\"rewritten\"")
  message(FATAL_ERROR "apply gate: map -> unordered_map was not planned")
endif()
if(NOT Json MATCHES "\"from\":\"std::vector[^\"]*\",\"to\":\"std::unordered_set\",\"status\":\"rewritten\"")
  message(FATAL_ERROR "apply gate: vector -> unordered_set was not planned")
endif()
if(NOT Json MATCHES "\"name\":\"Groups\",[^}]*\"status\":\"kept\"")
  message(FATAL_ERROR "apply gate: the iterated list was not kept:\n${Json}")
endif()

# --- Apply: write .brainy.cpp siblings ---------------------------------------
execute_process(
  COMMAND "${BRAINY}" apply ${CaseFiles}
  RESULT_VARIABLE Rc OUTPUT_QUIET ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "apply (write) failed (rc=${Rc}): ${Err}")
endif()

# --- Compile both, run both, byte-compare stdout -----------------------------
foreach(Case ${RewrittenCases})
  if(NOT EXISTS "${WORK_DIR}/${Case}.brainy.cpp")
    message(FATAL_ERROR "apply gate: ${Case}.brainy.cpp was not written")
  endif()
  foreach(Kind orig new)
    if(Kind STREQUAL "orig")
      set(Src "${WORK_DIR}/${Case}.cpp")
    else()
      set(Src "${WORK_DIR}/${Case}.brainy.cpp")
    endif()
    execute_process(
      COMMAND "${CXX}" -O2 -std=c++17 "${Src}"
              -o "${WORK_DIR}/${Case}.${Kind}"
      RESULT_VARIABLE Rc ERROR_VARIABLE Err)
    if(NOT Rc EQUAL 0)
      message(FATAL_ERROR "compile of ${Src} failed:\n${Err}")
    endif()
    execute_process(
      COMMAND "${WORK_DIR}/${Case}.${Kind}"
      OUTPUT_VARIABLE Out_${Kind} RESULT_VARIABLE Rc)
    if(NOT Rc EQUAL 0)
      message(FATAL_ERROR "${Case}.${Kind} exited with rc=${Rc}")
    endif()
  endforeach()
  if(NOT Out_orig STREQUAL Out_new)
    message(FATAL_ERROR "apply gate: ${Case} output changed after rewrite:\n"
                        "original: ${Out_orig}rewritten: ${Out_new}")
  endif()
  message(STATUS "apply gate: ${Case} rewritten, behavior byte-identical")
endforeach()

# --- Idempotence: --in-place on the applied output is a byte-level no-op -----
foreach(Case ${RewrittenCases})
  file(READ "${WORK_DIR}/${Case}.brainy.cpp" Before)
  execute_process(
    COMMAND "${BRAINY}" apply --in-place "${WORK_DIR}/${Case}.brainy.cpp"
    RESULT_VARIABLE Rc OUTPUT_QUIET ERROR_VARIABLE Err)
  if(NOT Rc EQUAL 0)
    message(FATAL_ERROR "apply --in-place on applied output failed: ${Err}")
  endif()
  file(READ "${WORK_DIR}/${Case}.brainy.cpp" After)
  if(NOT Before STREQUAL After)
    message(FATAL_ERROR "apply gate: ${Case} is not idempotent")
  endif()
endforeach()
message(STATUS "apply gate: idempotence holds on all applied outputs")
