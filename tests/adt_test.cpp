//===- tests/adt_test.cpp - DsKind / Container / Table 1 tests ------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "adt/Container.h"
#include "adt/DsKind.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace brainy;

static const DsKind AllKinds[] = {
    DsKind::Vector, DsKind::List,   DsKind::Deque,
    DsKind::Set,    DsKind::AvlSet, DsKind::HashSet,
    DsKind::Map,    DsKind::AvlMap, DsKind::HashMap};

static bool contains(const std::vector<DsKind> &V, DsKind K) {
  return std::find(V.begin(), V.end(), K) != V.end();
}

//===----------------------------------------------------------------------===//
// DsKind metadata
//===----------------------------------------------------------------------===//

TEST(DsKindTest, NamesRoundTrip) {
  for (DsKind Kind : AllKinds) {
    DsKind Parsed;
    ASSERT_TRUE(dsKindFromName(dsKindName(Kind), Parsed));
    EXPECT_EQ(Parsed, Kind);
  }
  DsKind Dummy;
  EXPECT_FALSE(dsKindFromName("btree", Dummy));
}

TEST(DsKindTest, Families) {
  EXPECT_TRUE(isSequence(DsKind::Vector));
  EXPECT_TRUE(isSequence(DsKind::Deque));
  EXPECT_FALSE(isSequence(DsKind::Set));
  EXPECT_TRUE(isAssociative(DsKind::HashMap));
  EXPECT_TRUE(isMapFamily(DsKind::AvlMap));
  EXPECT_FALSE(isMapFamily(DsKind::AvlSet));
}

//===----------------------------------------------------------------------===//
// Table 1 replacement rules
//===----------------------------------------------------------------------===//

TEST(Table1Test, VectorRowMatchesPaper) {
  // Order-aware: list and deque only (set family is order-oblivious-only).
  std::vector<DsKind> Aware = replacementCandidates(DsKind::Vector, false);
  EXPECT_TRUE(contains(Aware, DsKind::Vector));
  EXPECT_TRUE(contains(Aware, DsKind::List));
  EXPECT_TRUE(contains(Aware, DsKind::Deque));
  EXPECT_FALSE(contains(Aware, DsKind::Set));
  EXPECT_FALSE(contains(Aware, DsKind::HashSet));
  // Order-oblivious adds set, avl_set, hash_set.
  std::vector<DsKind> OO = replacementCandidates(DsKind::Vector, true);
  EXPECT_EQ(OO.size(), 6u);
  EXPECT_TRUE(contains(OO, DsKind::Set));
  EXPECT_TRUE(contains(OO, DsKind::AvlSet));
  EXPECT_TRUE(contains(OO, DsKind::HashSet));
}

TEST(Table1Test, ListRowMatchesPaper) {
  std::vector<DsKind> Aware = replacementCandidates(DsKind::List, false);
  EXPECT_TRUE(contains(Aware, DsKind::Vector));
  EXPECT_TRUE(contains(Aware, DsKind::Deque));
  EXPECT_FALSE(contains(Aware, DsKind::HashSet));
  std::vector<DsKind> OO = replacementCandidates(DsKind::List, true);
  EXPECT_EQ(OO.size(), 6u);
}

TEST(Table1Test, SetRowMatchesPaper) {
  // avl_set has no limitation; vector/list/hash_set are order-oblivious.
  std::vector<DsKind> Aware = replacementCandidates(DsKind::Set, false);
  EXPECT_EQ(Aware.size(), 2u);
  EXPECT_TRUE(contains(Aware, DsKind::AvlSet));
  std::vector<DsKind> OO = replacementCandidates(DsKind::Set, true);
  EXPECT_TRUE(contains(OO, DsKind::Vector));
  EXPECT_TRUE(contains(OO, DsKind::List));
  EXPECT_TRUE(contains(OO, DsKind::HashSet));
}

TEST(Table1Test, MapRowMatchesPaper) {
  std::vector<DsKind> Aware = replacementCandidates(DsKind::Map, false);
  EXPECT_EQ(Aware.size(), 2u);
  EXPECT_TRUE(contains(Aware, DsKind::AvlMap));
  std::vector<DsKind> OO = replacementCandidates(DsKind::Map, true);
  EXPECT_EQ(OO.size(), 3u);
  EXPECT_TRUE(contains(OO, DsKind::HashMap));
}

TEST(Table1Test, OriginalAlwaysIncludedFirst) {
  for (DsKind Kind : AllKinds)
    for (bool OO : {false, true}) {
      std::vector<DsKind> C = replacementCandidates(Kind, OO);
      ASSERT_FALSE(C.empty());
      EXPECT_EQ(C.front(), Kind);
    }
}

//===----------------------------------------------------------------------===//
// Model families (Section 5)
//===----------------------------------------------------------------------===//

TEST(ModelKindTest, SixFamiliesRouteCorrectly) {
  EXPECT_EQ(modelFor(DsKind::Vector, false), ModelKind::Vector);
  EXPECT_EQ(modelFor(DsKind::Vector, true), ModelKind::VectorOO);
  EXPECT_EQ(modelFor(DsKind::List, true), ModelKind::ListOO);
  EXPECT_EQ(modelFor(DsKind::Set, false), ModelKind::Set);
  EXPECT_EQ(modelFor(DsKind::AvlSet, true), ModelKind::Set);
  EXPECT_EQ(modelFor(DsKind::HashMap, false), ModelKind::Map);
}

TEST(ModelKindTest, OriginalsAndCandidates) {
  EXPECT_EQ(modelOriginal(ModelKind::VectorOO), DsKind::Vector);
  EXPECT_EQ(modelOriginal(ModelKind::Map), DsKind::Map);
  EXPECT_TRUE(modelIsOrderOblivious(ModelKind::VectorOO));
  EXPECT_FALSE(modelIsOrderOblivious(ModelKind::List));
  EXPECT_EQ(modelCandidates(ModelKind::Vector).size(), 3u);
  EXPECT_EQ(modelCandidates(ModelKind::VectorOO).size(), 6u);
}

//===----------------------------------------------------------------------===//
// Container factory + adapter
//===----------------------------------------------------------------------===//

TEST(ContainerTest, FactoryProducesEveryKind) {
  for (DsKind Kind : AllKinds) {
    std::unique_ptr<Container> C = makeContainer(Kind, 16);
    ASSERT_TRUE(C);
    EXPECT_EQ(C->kind(), Kind);
    EXPECT_EQ(C->size(), 0u);
    EXPECT_EQ(C->elementBytes(), 16u);
  }
}

TEST(ContainerTest, UniformSemanticsOnUniqueKeys) {
  // With unique keys, all nine kinds must contain the same key set after
  // the same tape of inserts/erases.
  for (DsKind Kind : AllKinds) {
    std::unique_ptr<Container> C = makeContainer(Kind);
    for (ds::Key K = 0; K != 50; ++K)
      EXPECT_TRUE(C->insert(K * 3).Found);
    EXPECT_EQ(C->size(), 50u);
    for (ds::Key K = 0; K != 50; ++K)
      ASSERT_TRUE(C->find(K * 3).Found) << dsKindName(Kind);
    EXPECT_FALSE(C->find(1).Found);
    EXPECT_TRUE(C->erase(0).Found);
    EXPECT_FALSE(C->erase(0).Found);
    EXPECT_EQ(C->size(), 49u);
  }
}

TEST(ContainerTest, SequencesKeepDuplicatesAssociativesReject) {
  for (DsKind Kind : AllKinds) {
    std::unique_ptr<Container> C = makeContainer(Kind);
    C->insert(7);
    ds::OpResult Second = C->insert(7);
    if (isSequence(Kind)) {
      EXPECT_TRUE(Second.Found);
      EXPECT_EQ(C->size(), 2u);
    } else {
      EXPECT_FALSE(Second.Found);
      EXPECT_EQ(C->size(), 1u);
    }
  }
}

TEST(ContainerTest, PushFrontFallsBackToInsertForAssociative) {
  std::unique_ptr<Container> C = makeContainer(DsKind::Set);
  EXPECT_TRUE(C->pushFront(5).Found);
  EXPECT_TRUE(C->find(5).Found);
  EXPECT_FALSE(C->pushFront(5).Found);
}

TEST(ContainerTest, IterateAndEraseAtWorkEverywhere) {
  for (DsKind Kind : AllKinds) {
    std::unique_ptr<Container> C = makeContainer(Kind);
    for (ds::Key K = 0; K != 20; ++K)
      C->insert(K);
    EXPECT_EQ(C->iterate(20).Cost, 20u) << dsKindName(Kind);
    EXPECT_TRUE(C->eraseAt(5).Found);
    EXPECT_EQ(C->size(), 19u);
    C->clear();
    EXPECT_EQ(C->size(), 0u);
  }
}

TEST(ContainerTest, ResizeCountOnlyForArrayAndHashKinds) {
  for (DsKind Kind : AllKinds) {
    std::unique_ptr<Container> C = makeContainer(Kind);
    for (ds::Key K = 0; K != 200; ++K)
      C->insert(K);
    bool Resizes = C->resizeCount() > 0;
    bool Expected = Kind == DsKind::Vector || Kind == DsKind::Deque ||
                    Kind == DsKind::HashSet || Kind == DsKind::HashMap;
    EXPECT_EQ(Resizes, Expected) << dsKindName(Kind);
  }
}

TEST(ContainerTest, SimMemoryReflectsStructureOverheads) {
  // At equal payloads: list > vector (per-node links), hash has the bucket
  // array, trees carry per-node link words.
  auto Live = [](DsKind Kind) {
    std::unique_ptr<Container> C = makeContainer(Kind, 8);
    for (ds::Key K = 0; K != 256; ++K)
      C->insert(K);
    return C->simLiveBytes();
  };
  EXPECT_GT(Live(DsKind::List), Live(DsKind::Vector));
  EXPECT_GT(Live(DsKind::Set), Live(DsKind::Vector));
  EXPECT_GT(Live(DsKind::HashSet), 256u * 16);
}
