//===- tests/workloads_test.cpp - case-study workload tests ---------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "workloads/CaseStudy.h"

#include <gtest/gtest.h>

using namespace brainy;

TEST(CaseStudyTest, FourStudiesWithPaperMetadata) {
  auto Studies = allCaseStudies();
  ASSERT_EQ(Studies.size(), 4u);
  EXPECT_STREQ(Studies[0]->name(), "xalancbmk");
  EXPECT_STREQ(Studies[1]->name(), "chord");
  EXPECT_STREQ(Studies[2]->name(), "relipmoc");
  EXPECT_STREQ(Studies[3]->name(), "raytrace");

  EXPECT_EQ(Studies[0]->original(), DsKind::Vector);
  EXPECT_EQ(Studies[1]->original(), DsKind::Vector);
  EXPECT_EQ(Studies[2]->original(), DsKind::Set);
  EXPECT_EQ(Studies[3]->original(), DsKind::List);

  EXPECT_EQ(Studies[0]->inputNames().size(), 3u); // test/train/reference
  EXPECT_EQ(Studies[1]->inputNames().size(), 3u); // small/medium/large
  EXPECT_TRUE(Studies[1]->mapUsage());
  EXPECT_FALSE(Studies[0]->mapUsage());
}

TEST(CaseStudyTest, RunsAreDeterministic) {
  auto CS = makeRaytrace();
  MachineConfig MC = MachineConfig::core2();
  WorkloadRun A = CS->run(DsKind::List, 0, MC);
  WorkloadRun B = CS->run(DsKind::List, 0, MC);
  EXPECT_DOUBLE_EQ(A.Run.Cycles, B.Run.Cycles);
  EXPECT_EQ(A.Run.Hw.Instructions, B.Run.Hw.Instructions);
}

TEST(CaseStudyTest, CandidatesStartWithOriginal) {
  for (const auto &CS : allCaseStudies()) {
    std::vector<DsKind> C = CS->candidates();
    ASSERT_FALSE(C.empty());
    EXPECT_EQ(C.front(), CS->original());
  }
}

TEST(CaseStudyTest, ProfiledRunExposesFeatures) {
  auto CS = makeXalanCache();
  WorkloadRun Out = CS->runProfiled(1, MachineConfig::core2()); // train
  // The train input is a find-flood (Section 6.2).
  EXPECT_GT(Out.Sw.FindCount, 10000u);
  EXPECT_GT(Out.Features[FeatureId::FindFrac], 0.8);
  // Finds succeed at the very beginning: tiny relative scan depth.
  EXPECT_LT(Out.Features[FeatureId::FindCostRel], 0.1);
  EXPECT_TRUE(Out.Sw.orderOblivious());
}

TEST(CaseStudyTest, XalanInputsChangeSearchDepth) {
  // Table 4: touched-elements-per-find varies enormously across inputs.
  auto CS = makeXalanCache();
  MachineConfig MC = MachineConfig::core2();
  WorkloadRun Test = CS->runProfiled(0, MC);
  WorkloadRun Train = CS->runProfiled(1, MC);
  double DepthTest = Test.Features[FeatureId::FindCostAvg];
  double DepthTrain = Train.Features[FeatureId::FindCostAvg];
  EXPECT_GT(DepthTest, DepthTrain * 20);
}

TEST(CaseStudyTest, RaytraceIsIterationDominated) {
  auto CS = makeRaytrace();
  WorkloadRun Out = CS->runProfiled(0, MachineConfig::core2());
  EXPECT_GT(Out.Sw.IterateSteps, 100000u);
  EXPECT_FALSE(Out.Sw.orderOblivious());
}

TEST(CaseStudyTest, RelipmocIsFindHeavy) {
  auto CS = makeRelipmoC();
  WorkloadRun Out = CS->runProfiled(0, MachineConfig::core2());
  EXPECT_GT(Out.Sw.FindCount, 30000u);
  EXPECT_GT(Out.Sw.IterateCount, 0u);
}

//===----------------------------------------------------------------------===//
// Pinned paper-shape outcomes. These guard the evaluation results: if a
// container or machine-model change flips a winner, these fail before the
// benches mislead anyone.
//===----------------------------------------------------------------------===//

TEST(CaseStudyOutcomeTest, XalanWinnersMatchPaper) {
  auto CS = makeXalanCache();
  for (const MachineConfig &MC :
       {MachineConfig::core2(), MachineConfig::atom()}) {
    EXPECT_EQ(CS->race(0, MC).Best, DsKind::HashSet) << MC.Name; // test
    EXPECT_EQ(CS->race(1, MC).Best, DsKind::Vector) << MC.Name;  // train
    EXPECT_EQ(CS->race(2, MC).Best, DsKind::HashSet) << MC.Name; // ref
  }
}

TEST(CaseStudyOutcomeTest, ChordLargeDisagreesAcrossMachines) {
  auto CS = makeChordSim();
  RaceResult Core2 = CS->race(2, MachineConfig::core2());
  RaceResult Atom = CS->race(2, MachineConfig::atom());
  EXPECT_EQ(Core2.Best, DsKind::Vector);
  EXPECT_NE(Atom.Best, DsKind::Vector);
}

TEST(CaseStudyOutcomeTest, ChordMediumPrefersHashMap) {
  auto CS = makeChordSim();
  EXPECT_EQ(CS->race(1, MachineConfig::core2()).Best, DsKind::HashMap);
  EXPECT_EQ(CS->race(1, MachineConfig::atom()).Best, DsKind::HashMap);
}

TEST(CaseStudyOutcomeTest, RelipmocPrefersAvlSet) {
  auto CS = makeRelipmoC();
  EXPECT_EQ(CS->race(0, MachineConfig::core2()).Best, DsKind::AvlSet);
  EXPECT_EQ(CS->race(0, MachineConfig::atom()).Best, DsKind::AvlSet);
}

TEST(CaseStudyOutcomeTest, RaytracePrefersVector) {
  auto CS = makeRaytrace();
  EXPECT_EQ(CS->race(0, MachineConfig::core2()).Best, DsKind::Vector);
  EXPECT_EQ(CS->race(0, MachineConfig::atom()).Best, DsKind::Vector);
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

TEST(CaseStudyTest, AsMapVariant) {
  EXPECT_EQ(asMapVariant(DsKind::Set, true), DsKind::Map);
  EXPECT_EQ(asMapVariant(DsKind::AvlSet, true), DsKind::AvlMap);
  EXPECT_EQ(asMapVariant(DsKind::HashSet, true), DsKind::HashMap);
  EXPECT_EQ(asMapVariant(DsKind::Vector, true), DsKind::Vector);
  EXPECT_EQ(asMapVariant(DsKind::Set, false), DsKind::Set);
}

TEST(CaseStudyTest, ObservedOpsNotifiesObserver) {
  struct Counter final : OpObserver {
    void onOp(AppOp Op, uint64_t, uint64_t Arg) override {
      ++Count;
      if (Op == AppOp::Iterate)
        LastIter = Arg;
    }
    unsigned Count = 0;
    uint64_t LastIter = 0;
  } Obs;
  auto C = makeContainer(DsKind::Vector);
  ObservedOps Ops(*C, &Obs);
  Ops.insert(1);
  Ops.find(1);
  Ops.iterate(5);
  EXPECT_EQ(Obs.Count, 3u);
  EXPECT_EQ(Obs.LastIter, 5u);
  EXPECT_EQ(Ops.size(), 1u);
}
