//===- tests/serve_test.cpp - The serving subsystem -----------------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
// The serving contracts (DESIGN.md §15):
//
//  * the batched forward pass is bit-identical to the scalar one at any
//    batch size, so batch assembly can never change an answer;
//  * the request pipeline answers in input order for any mix of good and
//    malformed lines, batched or not, and a live server returns the same
//    bytes at any MaxBatch / client-thread count;
//  * the registry hot-swap is atomic: every query is answered entirely by
//    the old bundle or entirely by the new one, a corrupt replacement
//    keeps the old bundle serving, and in-flight snapshots keep a retired
//    bundle alive until they drain;
//  * graceful shutdown answers everything accepted before stopping.
//
//===----------------------------------------------------------------------===//

#include "core/Recommend.h"
#include "distributed/Tcp.h"
#include "ml/NeuralNet.h"
#include "serve/LineChannel.h"
#include "serve/ModelRegistry.h"
#include "serve/Pipeline.h"
#include "serve/Server.h"
#include "serve/SyntheticBundle.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace brainy;
using namespace brainy::serve;

namespace {

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "brainy_serve_" + Name;
}

void writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr) << Path;
  ASSERT_EQ(std::fwrite(Text.data(), 1, Text.size(), F), Text.size());
  ASSERT_EQ(std::fclose(F), 0);
}

/// A deterministic, mildly varied query line for index \p I.
std::string queryLine(const std::string &Arch, unsigned I) {
  RecommendQuery Q;
  Q.Arch = Arch;
  const DsKind Kinds[] = {DsKind::Vector, DsKind::List, DsKind::Set,
                          DsKind::Map};
  Q.Original = Kinds[I % 4];
  Q.OrderOblivious = (I % 3) != 0;
  for (unsigned F = 0; F != NumFeatures; ++F)
    Q.Features.Values[F] =
        static_cast<double>((I * 31 + F * 7) % 97) / 8.0 - 3.0;
  return formatRecommendQuery(Q);
}

/// Sends \p Request over one connection and returns everything the server
/// wrote until it closed or the expected line count arrived.
std::vector<std::string> roundTrip(uint16_t Port, const std::string &Request,
                                   size_t ExpectLines) {
  auto Conn = dist::TcpTransport::connectTo(
      dist::TcpEndpoint{"127.0.0.1", Port}, /*TimeoutMs=*/5000);
  Conn->writeAll(Request.data(), Request.size());
  LineChannel Chan(*Conn);
  std::vector<std::string> Lines;
  std::string Line;
  while (Lines.size() < ExpectLines) {
    LineChannel::ReadStatus St = Chan.readLine(Line, 5000);
    if (St == LineChannel::ReadStatus::Line)
      Lines.push_back(Line);
    else if (St == LineChannel::ReadStatus::Eof)
      break;
  }
  return Lines;
}

} // namespace

//===----------------------------------------------------------------------===//
// Batched forward pass: bitwise equality with the scalar path
//===----------------------------------------------------------------------===//

TEST(NeuralNetBatch, BitIdenticalToScalarAtAnyBatchSize) {
  // A real trained net (deterministic seed) — not a synthetic constant
  // net, so every weight actually participates.
  Dataset Data;
  for (unsigned I = 0; I != 64; ++I) {
    std::vector<double> X(10);
    for (unsigned J = 0; J != 10; ++J)
      X[J] = static_cast<double>((I * 17 + J * 5) % 23) / 4.0 - 2.0;
    Data.add(std::move(X), I % 3);
  }
  NetConfig Config;
  Config.HiddenUnits = 6;
  Config.Epochs = 40;
  NeuralNet Net = trainNetwork(Data, Config);

  for (size_t Batch : {size_t(1), size_t(2), size_t(7), size_t(64)}) {
    std::vector<std::vector<double>> Sub(Data.Rows.begin(),
                                         Data.Rows.begin() + Batch);
    std::vector<std::vector<double>> Got = Net.predictProbaBatch(Sub);
    ASSERT_EQ(Got.size(), Batch);
    for (size_t I = 0; I != Batch; ++I) {
      std::vector<double> Want = Net.predictProba(Sub[I]);
      ASSERT_EQ(Got[I].size(), Want.size());
      for (size_t J = 0; J != Want.size(); ++J)
        EXPECT_EQ(Got[I][J], Want[J]) // bitwise, not near
            << "row " << I << " class " << J << " batch " << Batch;
    }
  }
}

//===----------------------------------------------------------------------===//
// Synthetic bundles and the registry
//===----------------------------------------------------------------------===//

TEST(SyntheticBundle, LoadsThroughHardenedLoaderAndPredictsItsWinner) {
  std::string Path = tmpPath("synthetic.models");
  ASSERT_FALSE(writeSyntheticBundle(Path, "core2", "t", /*WinnerIndex=*/0));
  Expected<Brainy> Loaded = Brainy::load(Path);
  ASSERT_TRUE(Loaded);
  EXPECT_EQ(Loaded->machineName(), "core2");
  // Winner 0 is the original itself in every Table 1 row.
  RecommendQuery Q;
  Error E = parseRecommendQuery(queryLine("core2", 1), Q);
  ASSERT_FALSE(E) << E.message();
  EXPECT_EQ(Loaded->recommendWith(modelFor(Q.Original, Q.OrderOblivious),
                                  Q.Features, Q.OrderOblivious),
            Q.Original);
}

TEST(SyntheticBundle, DistinctWinnersGiveDistinguishableAnswers) {
  // The hot-swap observability primitive: winner 0 keeps the original,
  // winner 1 picks the next candidate, so answers reveal the bundle.
  std::string P0 = tmpPath("winner0.models");
  std::string P1 = tmpPath("winner1.models");
  ASSERT_FALSE(writeSyntheticBundle(P0, "core2", "t", 0));
  ASSERT_FALSE(writeSyntheticBundle(P1, "core2", "t", 1));
  Expected<Brainy> B0 = Brainy::load(P0);
  Expected<Brainy> B1 = Brainy::load(P1);
  ASSERT_TRUE(B0);
  ASSERT_TRUE(B1);
  FeatureVector F; // zero features; the constant net ignores them anyway
  EXPECT_NE(B0->recommendWith(ModelKind::VectorOO, F, true),
            B1->recommendWith(ModelKind::VectorOO, F, true));
}

TEST(ModelRegistry, InitialLoadIsStrict) {
  std::string Good = tmpPath("reg_good.models");
  ASSERT_FALSE(writeSyntheticBundle(Good, "core2", "t", 0));
  {
    ModelRegistry Reg({Good, tmpPath("reg_missing.models")});
    EXPECT_TRUE(Reg.loadInitial()); // any missing bundle refuses startup
    EXPECT_EQ(Reg.lookup("core2"), nullptr); // nothing published
  }
  {
    // Two bundles claiming the same machine cannot both serve it.
    std::string Dup = tmpPath("reg_dup.models");
    ASSERT_FALSE(writeSyntheticBundle(Dup, "core2", "t", 1));
    ModelRegistry Reg({Good, Dup});
    Error E = Reg.loadInitial();
    EXPECT_TRUE(E);
    EXPECT_EQ(E.code(), ErrCode::InvalidValue);
  }
  {
    ModelRegistry Reg({Good});
    EXPECT_FALSE(Reg.loadInitial());
    EXPECT_NE(Reg.lookup("core2"), nullptr);
    EXPECT_EQ(Reg.lookup("atom"), nullptr);
    EXPECT_EQ(Reg.arches(), std::vector<std::string>{"core2"});
  }
}

TEST(ModelRegistry, CorruptReloadKeepsOldBundleServing) {
  std::string Path = tmpPath("reg_corrupt.models");
  ASSERT_FALSE(writeSyntheticBundle(Path, "core2", "t", 0));
  ModelRegistry Reg({Path});
  ASSERT_FALSE(Reg.loadInitial());
  std::shared_ptr<const Brainy> Before = Reg.lookup("core2");
  ASSERT_NE(Before, nullptr);
  uint64_t Gen = Reg.generation();

  // Corrupt the file (flip payload bytes: CRC now fails in Brainy::load).
  std::string Text = syntheticBundleText("core2", "t", 0);
  Text[Text.size() / 2] ^= 0x5a;
  writeFile(Path, Text);

  ReloadOutcome Outcome = Reg.reload();
  EXPECT_FALSE(Outcome.ok());
  EXPECT_EQ(Outcome.Swapped, 0u);
  ASSERT_EQ(Outcome.Errors.size(), 1u);
  // The previously published bundle is untouched — same object, even.
  EXPECT_EQ(Reg.lookup("core2"), Before);
  EXPECT_EQ(Reg.generation(), Gen);
}

TEST(ModelRegistry, SwapIsAtomicAndRetiresAfterLastSnapshot) {
  std::string Path = tmpPath("reg_swap.models");
  ASSERT_FALSE(writeSyntheticBundle(Path, "core2", "t", 0));
  ModelRegistry Reg({Path});
  ASSERT_FALSE(Reg.loadInitial());
  std::shared_ptr<const Brainy> Old = Reg.lookup("core2");
  std::weak_ptr<const Brainy> OldWatch = Old;

  ASSERT_FALSE(writeSyntheticBundle(Path, "core2", "t", 1));
  ReloadOutcome Outcome = Reg.reload();
  EXPECT_TRUE(Outcome.ok());
  EXPECT_EQ(Outcome.Swapped, 1u);

  // An in-flight batch (our Old snapshot) still answers with the old
  // bundle; new lookups get the new one.
  std::shared_ptr<const Brainy> New = Reg.lookup("core2");
  ASSERT_NE(New, nullptr);
  EXPECT_NE(New, Old);
  FeatureVector F;
  EXPECT_NE(Old->recommendWith(ModelKind::VectorOO, F, true),
            New->recommendWith(ModelKind::VectorOO, F, true));

  // Retire-after-drain: the old bundle dies exactly when the last
  // snapshot does.
  Old.reset();
  EXPECT_TRUE(OldWatch.expired());
}

//===----------------------------------------------------------------------===//
// Pipeline: ordering, batched/unbatched equality
//===----------------------------------------------------------------------===//

TEST(Pipeline, AnswersInOrderBatchedAndUnbatchedIdentically) {
  std::string Core2 = tmpPath("pipe_core2.models");
  std::string Atom = tmpPath("pipe_atom.models");
  ASSERT_FALSE(writeSyntheticBundle(Core2, "core2", "t", 0));
  ASSERT_FALSE(writeSyntheticBundle(Atom, "atom", "t", 1));
  ModelRegistry Reg({Core2, Atom});
  ASSERT_FALSE(Reg.loadInitial());

  std::vector<std::string> Lines;
  for (unsigned I = 0; I != 40; ++I)
    Lines.push_back(queryLine(I % 2 ? "core2" : "atom", I));
  Lines.push_back("not a query");
  Lines.push_back(queryLine("nosuch", 3));

  std::vector<std::string> Batched = answerRequestLines(Reg, Lines, true);
  std::vector<std::string> Scalar = answerRequestLines(Reg, Lines, false);
  ASSERT_EQ(Batched.size(), Lines.size());
  EXPECT_EQ(Batched, Scalar); // the ≥2x speedup changes nothing else

  // Spot-check ordering: response I echoes query I's prefix.
  for (unsigned I = 0; I != 40; ++I) {
    RecommendQuery Q;
    ASSERT_FALSE(parseRecommendQuery(Lines[I], Q));
    std::string Prefix = Q.Arch + ' ' + dsKindName(Q.Original);
    EXPECT_EQ(Batched[I].compare(0, Prefix.size(), Prefix), 0)
        << Batched[I];
  }
  EXPECT_EQ(Batched[40].compare(0, 6, "error "), 0);
  EXPECT_EQ(Batched[41],
            "error unknown-key: no model bundle loaded for machine "
            "'nosuch'");
}

//===----------------------------------------------------------------------===//
// Live server: determinism across batch sizes and client counts
//===----------------------------------------------------------------------===//

namespace {

/// Answers every line one-shot as the reference, then serves the same
/// lines through a live server with the given shape and diffs.
void expectServerMatchesOneShot(unsigned MaxBatch, bool Batched,
                                unsigned Clients) {
  std::string Path = tmpPath("det.models");
  ASSERT_FALSE(writeSyntheticBundle(Path, "core2", "t", 2));
  ModelRegistry Reference({Path});
  ASSERT_FALSE(Reference.loadInitial());

  constexpr unsigned PerClient = 25;
  std::vector<std::vector<std::string>> Want(Clients);
  for (unsigned C = 0; C != Clients; ++C) {
    std::vector<std::string> Lines;
    for (unsigned I = 0; I != PerClient; ++I)
      Lines.push_back(queryLine("core2", C * PerClient + I));
    Want[C] = answerRequestLines(Reference, Lines, /*Batched=*/true);
  }

  ServeOptions Opts;
  Opts.ModelPaths = {Path};
  Opts.MaxBatch = MaxBatch;
  Opts.Batched = Batched;
  Opts.ConnWorkers = Clients;
  RecommendServer Server(Opts);
  ASSERT_FALSE(Server.start());

  std::vector<std::thread> Threads;
  std::vector<std::vector<std::string>> Got(Clients);
  std::atomic<unsigned> Failures{0};
  for (unsigned C = 0; C != Clients; ++C)
    Threads.emplace_back([&, C] {
      try {
        std::string Request;
        for (unsigned I = 0; I != PerClient; ++I)
          Request += queryLine("core2", C * PerClient + I) + "\n";
        Got[C] = roundTrip(Server.port(), Request, PerClient);
      } catch (const ErrorException &) {
        Failures.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  Server.stop();

  EXPECT_EQ(Failures.load(), 0u);
  for (unsigned C = 0; C != Clients; ++C)
    EXPECT_EQ(Got[C], Want[C]) << "client " << C << " MaxBatch " << MaxBatch
                               << " Batched " << Batched;
}

} // namespace

TEST(RecommendServer, SameAnswersAtAnyBatchSizeAndClientCount) {
  expectServerMatchesOneShot(/*MaxBatch=*/1, /*Batched=*/true, /*Clients=*/4);
  expectServerMatchesOneShot(/*MaxBatch=*/4, /*Batched=*/true, /*Clients=*/4);
  expectServerMatchesOneShot(/*MaxBatch=*/256, /*Batched=*/true,
                             /*Clients=*/8);
  expectServerMatchesOneShot(/*MaxBatch=*/256, /*Batched=*/false,
                             /*Clients=*/4);
  expectServerMatchesOneShot(/*MaxBatch=*/256, /*Batched=*/true,
                             /*Clients=*/1);
}

TEST(RecommendServer, HotSwapMidTrafficIsAtomicAndCorruptReloadIsSafe) {
  std::string Path = tmpPath("swap_live.models");
  ASSERT_FALSE(writeSyntheticBundle(Path, "core2", "t", 0));

  ServeOptions Opts;
  Opts.ModelPaths = {Path};
  Opts.ConnWorkers = 4;
  RecommendServer Server(Opts);
  ASSERT_FALSE(Server.start());

  // The two possible answers for our probe query, old and new bundle.
  std::string Probe = queryLine("core2", 4); // vector, oo
  RecommendQuery Q;
  ASSERT_FALSE(parseRecommendQuery(Probe, Q));
  Expected<Brainy> OldB = Brainy::load(Path);
  ASSERT_TRUE(OldB);
  std::string OldAnswer = answerRecommendQuery(*OldB, Q);

  ASSERT_FALSE(writeSyntheticBundle(Path, "core2", "t", 1));
  Expected<Brainy> NewB = Brainy::load(Path);
  ASSERT_TRUE(NewB);
  std::string NewAnswer = answerRecommendQuery(*NewB, Q);
  ASSERT_NE(OldAnswer, NewAnswer);

  // Hammer the probe from several clients while reloads land mid-traffic.
  std::atomic<bool> Done{false};
  std::atomic<unsigned> OldSeen{0}, NewSeen{0}, BadSeen{0};
  std::vector<std::thread> Clients;
  for (unsigned C = 0; C != 4; ++C)
    Clients.emplace_back([&] {
      auto Conn = dist::TcpTransport::connectTo(
          dist::TcpEndpoint{"127.0.0.1", Server.port()}, 5000);
      LineChannel Chan(*Conn);
      std::string Line;
      while (!Done.load()) {
        Chan.writeLine(Probe);
        LineChannel::ReadStatus St = Chan.readLine(Line, 5000);
        while (St == LineChannel::ReadStatus::Timeout && !Done.load())
          St = Chan.readLine(Line, 5000);
        if (St != LineChannel::ReadStatus::Line)
          break;
        if (Line == OldAnswer)
          OldSeen.fetch_add(1);
        else if (Line == NewAnswer)
          NewSeen.fetch_add(1);
        else
          BadSeen.fetch_add(1); // a blend would land here
      }
    });

  // First reload publishes winner 1; every later reload of the identical
  // file is also a (harmless) swap. Interleave with live traffic.
  for (unsigned I = 0; I != 20; ++I) {
    ReloadOutcome Outcome = Server.reload();
    EXPECT_TRUE(Outcome.ok());
  }
  // Now a corrupt reload mid-traffic: serving must continue on winner 1.
  {
    std::string Text = syntheticBundleText("core2", "t", 1);
    Text[Text.size() - 3] ^= 0x5a;
    writeFile(Path, Text);
    ReloadOutcome Outcome = Server.reload();
    EXPECT_FALSE(Outcome.ok());
    EXPECT_EQ(Outcome.Swapped, 0u);
  }
  // Let the clients observe the post-corrupt-reload world, then stop.
  for (unsigned I = 0; I != 50 && NewSeen.load() < 8; ++I)
    std::this_thread::yield();
  Done.store(true);
  for (std::thread &T : Clients)
    T.join();
  Server.stop();

  // Atomicity: only whole-bundle answers, never a blend or an error.
  EXPECT_EQ(BadSeen.load(), 0u);
  EXPECT_GT(NewSeen.load(), 0u); // the swap really took effect
  EXPECT_GE(Server.stats().Reloads.load(), 20u);
}

TEST(RecommendServer, GracefulStopDrainsEveryAcceptedQuery) {
  std::string Path = tmpPath("drain.models");
  ASSERT_FALSE(writeSyntheticBundle(Path, "core2", "t", 0));
  ServeOptions Opts;
  Opts.ModelPaths = {Path};
  Opts.ConnWorkers = 2;
  RecommendServer Server(Opts);
  ASSERT_FALSE(Server.start());

  constexpr unsigned N = 200;
  std::string Request;
  for (unsigned I = 0; I != N; ++I)
    Request += queryLine("core2", I) + "\n";

  // Race a big pipelined request group against stop(): whatever the
  // server read before stopping must still be answered in full.
  auto Conn = dist::TcpTransport::connectTo(
      dist::TcpEndpoint{"127.0.0.1", Server.port()}, 5000);
  Conn->writeAll(Request.data(), Request.size());
  std::thread Stopper([&] { Server.stop(); });
  LineChannel Chan(*Conn);
  std::vector<std::string> Lines;
  std::string Line;
  for (;;) {
    LineChannel::ReadStatus St = Chan.readLine(Line, 2000);
    if (St == LineChannel::ReadStatus::Line)
      Lines.push_back(Line);
    else
      break;
  }
  Stopper.join();

  // Every response the server produced is complete and answers its query
  // in order (it may not have read all N before stop, but what it read it
  // answered — never a torn or missing line in the middle).
  ASSERT_LE(Lines.size(), N);
  ModelRegistry Reference({Path});
  ASSERT_FALSE(Reference.loadInitial());
  std::vector<std::string> AllLines;
  for (unsigned I = 0; I != N; ++I)
    AllLines.push_back(queryLine("core2", I));
  std::vector<std::string> Want = answerRequestLines(Reference, AllLines, true);
  for (size_t I = 0; I != Lines.size(); ++I)
    EXPECT_EQ(Lines[I], Want[I]) << "response " << I;

  // Stats agree with what went over the wire.
  EXPECT_EQ(Server.stats().Queries.load(), Lines.size());
}

TEST(RecommendServer, ControlLinesReloadAndStats) {
  std::string Path = tmpPath("ctl.models");
  ASSERT_FALSE(writeSyntheticBundle(Path, "core2", "t", 0));
  ServeOptions Opts;
  Opts.ModelPaths = {Path};
  RecommendServer Server(Opts);
  ASSERT_FALSE(Server.start());

  std::string Request = queryLine("core2", 0) + "\n!reload\n" +
                        queryLine("core2", 1) + "\n!nosuch\n";
  std::vector<std::string> Lines = roundTrip(Server.port(), Request, 4);
  ASSERT_EQ(Lines.size(), 4u);
  EXPECT_EQ(Lines[1], "reloaded 1 bundle(s)");
  EXPECT_EQ(Lines[3].compare(0, 6, "error "), 0);
  Server.stop();
  EXPECT_EQ(Server.stats().Reloads.load(), 1u);
}

//===----------------------------------------------------------------------===//
// Brainy::recommendBatch fallback parity
//===----------------------------------------------------------------------===//

TEST(RecommendBatch, UntrainedModelFallsBackPerQueryLikeScalar) {
  Brainy Untrained; // every model predicts "keep the original"
  FeatureVector F;
  std::vector<const FeatureVector *> Features{&F, &F, &F};
  std::vector<bool> OO{true, true, false};
  std::vector<DsKind> Out;
  Untrained.recommendBatch(ModelKind::Set, Features, OO, Out);
  ASSERT_EQ(Out.size(), 3u);
  for (DsKind K : Out)
    EXPECT_EQ(K, DsKind::Set);
  EXPECT_EQ(Untrained.fallbackCount(), 3u);

  Untrained.setStrict(true);
  EXPECT_THROW(Untrained.recommendBatch(ModelKind::Set, Features, OO, Out),
               ErrorException);
}
