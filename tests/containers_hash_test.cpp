//===- tests/containers_hash_test.cpp - HashTable tests -------------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "containers/HashTable.h"
#include "machine/MachineModel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace brainy;
using namespace brainy::ds;

TEST(HashTableTest, InsertFindErase) {
  HashTable H;
  EXPECT_TRUE(H.insert(1).Found);
  EXPECT_TRUE(H.insert(2).Found);
  EXPECT_FALSE(H.insert(1).Found); // duplicate
  EXPECT_EQ(H.size(), 2u);
  EXPECT_TRUE(H.find(1).Found);
  EXPECT_FALSE(H.find(3).Found);
  EXPECT_TRUE(H.erase(1).Found);
  EXPECT_FALSE(H.erase(1).Found);
  EXPECT_EQ(H.size(), 1u);
}

TEST(HashTableTest, ResizesKeepLoadFactorBounded) {
  HashTable H;
  for (Key K = 0; K != 1000; ++K)
    H.insert(K);
  EXPECT_GE(H.bucketCount(), 1000u);
  EXPECT_GT(H.resizeCount(), 0u);
  // With splitmix dispersion, chains stay short.
  EXPECT_LE(H.maxChainLength(), 8u);
  for (Key K = 0; K != 1000; ++K)
    EXPECT_TRUE(H.find(K).Found);
}

TEST(HashTableTest, MirrorsUnorderedSetUnderChurn) {
  HashTable H;
  std::unordered_set<Key> Ref;
  Rng R(5);
  for (int I = 0; I != 8000; ++I) {
    Key K = static_cast<Key>(R.nextBelow(600));
    switch (R.nextBelow(3)) {
    case 0:
      ASSERT_EQ(H.insert(K).Found, Ref.insert(K).second);
      break;
    case 1:
      ASSERT_EQ(H.erase(K).Found, Ref.erase(K) == 1);
      break;
    default:
      ASSERT_EQ(H.find(K).Found, Ref.count(K) == 1);
      break;
    }
    ASSERT_EQ(H.size(), Ref.size());
  }
}

TEST(HashTableTest, IterateTouchesEveryElementOnce) {
  HashTable H;
  for (Key K = 0; K != 37; ++K)
    H.insert(K);
  // One full pass visits each element exactly once (bucket order).
  OpResult R = H.iterate(37);
  EXPECT_EQ(R.Cost, 37u);
  // Next pass wraps and revisits.
  EXPECT_EQ(H.iterate(37).Cost, 37u);
}

TEST(HashTableTest, EraseAtRemovesSomeElement) {
  HashTable H;
  for (Key K = 0; K != 10; ++K)
    H.insert(K);
  EXPECT_TRUE(H.eraseAt(3).Found);
  EXPECT_EQ(H.size(), 9u);
  EXPECT_FALSE(H.eraseAt(9).Found); // out of range now
}

TEST(HashTableTest, ClearAndReuse) {
  HashTable H(32);
  for (Key K = 0; K != 100; ++K)
    H.insert(K);
  uint64_t LiveBefore = H.simLiveBytes();
  EXPECT_GT(LiveBefore, 100u * 32);
  H.clear();
  EXPECT_EQ(H.size(), 0u);
  // Bucket array remains allocated; nodes are gone.
  EXPECT_LT(H.simLiveBytes(), LiveBefore);
  EXPECT_TRUE(H.insert(1).Found);
}

TEST(HashTableTest, RehashBranchPattern) {
  MachineModel M(MachineConfig::core2());
  HashTable H(8, &M);
  for (Key K = 0; K != 100; ++K)
    H.insert(K);
  // The load-factor check fired on every insert; rehashes are rare takens.
  HardwareCounters C = M.counters();
  EXPECT_GT(C.Branches, 100u);
  EXPECT_GT(H.resizeCount(), 1u);
}

TEST(HashTableTest, FindCostIsChainProbes) {
  HashTable H;
  H.insert(42);
  OpResult Hit = H.find(42);
  EXPECT_EQ(Hit.Cost, 1u);
  OpResult MissEmpty = H.find(43);
  EXPECT_LE(MissEmpty.Cost, 1u); // empty or 1-chain bucket
}

TEST(HashTableTest, NegativeAndExtremeKeys) {
  HashTable H;
  const Key Extremes[] = {-1, -1000000, 0, INT64_MAX, INT64_MIN};
  for (Key K : Extremes)
    EXPECT_TRUE(H.insert(K).Found);
  for (Key K : Extremes)
    EXPECT_TRUE(H.find(K).Found);
  EXPECT_EQ(H.size(), 5u);
}

class HashScaleSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(HashScaleSweep, AllElementsReachableAfterGrowth) {
  unsigned N = GetParam();
  HashTable H;
  Rng R(N);
  std::unordered_set<Key> Ref;
  while (Ref.size() < N) {
    Key K = static_cast<Key>(R.next());
    H.insert(K);
    Ref.insert(K);
  }
  EXPECT_EQ(H.size(), Ref.size());
  for (Key K : Ref)
    ASSERT_TRUE(H.find(K).Found);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HashScaleSweep,
                         ::testing::Values(10, 100, 1000, 5000));
