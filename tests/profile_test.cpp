//===- tests/profile_test.cpp - profiling layer tests ---------------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "profile/Features.h"
#include "profile/ProfiledContainer.h"
#include "profile/TraceFile.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace brainy;

//===----------------------------------------------------------------------===//
// ProfiledContainer
//===----------------------------------------------------------------------===//

TEST(ProfiledContainerTest, CountsEveryInterfaceFunction) {
  ProfiledContainer C(makeContainer(DsKind::Vector, 8));
  C.insert(1);
  C.insert(2);
  C.insertAt(1, 3);
  C.pushFront(0);
  C.find(2);
  C.find(99);
  C.erase(2);
  C.eraseAt(0);
  C.iterate(3);

  const SoftwareFeatures &Sw = C.features();
  EXPECT_EQ(Sw.InsertCount, 2u);
  EXPECT_EQ(Sw.InsertAtCount, 1u);
  EXPECT_EQ(Sw.PushFrontCount, 1u);
  EXPECT_EQ(Sw.FindCount, 2u);
  EXPECT_EQ(Sw.FindHits, 1u);
  EXPECT_EQ(Sw.EraseCount, 1u);
  EXPECT_EQ(Sw.EraseAtCount, 1u);
  EXPECT_EQ(Sw.EraseHits, 2u);
  EXPECT_EQ(Sw.IterateCount, 1u);
  EXPECT_EQ(Sw.IterateSteps, 3u);
  EXPECT_EQ(Sw.totalCalls(), 9u);
  EXPECT_EQ(Sw.ElementBytes, 8u);
}

TEST(ProfiledContainerTest, CostsAccumulate) {
  ProfiledContainer C(makeContainer(DsKind::Vector, 8));
  for (ds::Key K = 0; K != 10; ++K)
    C.insert(K);
  C.find(9); // touches all 10
  EXPECT_EQ(C.features().FindCost, 10u);
  C.pushFront(42); // shifts 10
  EXPECT_GE(C.features().InsertCost, 10u);
}

TEST(ProfiledContainerTest, SizeStatsAndResizes) {
  ProfiledContainer C(makeContainer(DsKind::Vector, 8));
  for (ds::Key K = 0; K != 100; ++K)
    C.insert(K);
  const SoftwareFeatures &Sw = C.features();
  EXPECT_EQ(Sw.SizeStats.max(), 100.0);
  EXPECT_GT(Sw.SizeStats.mean(), 0.0);
  EXPECT_GT(Sw.Resizes, 0u);
  EXPECT_GT(Sw.PeakSimBytes, 0u);
}

TEST(ProfiledContainerTest, OrderObliviousDetection) {
  // "Every data access is performed by find" -> order-oblivious.
  ProfiledContainer A(makeContainer(DsKind::Vector, 8));
  A.insert(1);
  A.find(1);
  A.erase(1);
  A.pushFront(2);
  EXPECT_TRUE(A.features().orderOblivious());

  ProfiledContainer B(makeContainer(DsKind::Vector, 8));
  B.insert(1);
  B.iterate(1);
  EXPECT_FALSE(B.features().orderOblivious());

  ProfiledContainer C(makeContainer(DsKind::Vector, 8));
  C.insertAt(0, 1);
  EXPECT_FALSE(C.features().orderOblivious());
}

TEST(ProfiledContainerTest, ResetFeaturesKeepsContents) {
  ProfiledContainer C(makeContainer(DsKind::Set, 8));
  C.insert(1);
  C.resetFeatures();
  EXPECT_EQ(C.features().InsertCount, 0u);
  EXPECT_EQ(C.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Feature extraction
//===----------------------------------------------------------------------===//

TEST(FeaturesTest, FractionsSumToOne) {
  ProfiledContainer C(makeContainer(DsKind::List, 8));
  for (int I = 0; I != 10; ++I)
    C.insert(I);
  for (int I = 0; I != 30; ++I)
    C.find(I % 10);
  C.iterate(5);
  FeatureVector F = extractFeatures(C.features(), HardwareCounters(), 64);
  double Sum = F[FeatureId::InsertFrac] + F[FeatureId::InsertAtFrac] +
               F[FeatureId::PushFrontFrac] + F[FeatureId::EraseFrac] +
               F[FeatureId::EraseAtFrac] + F[FeatureId::FindFrac] +
               F[FeatureId::IterateFrac];
  EXPECT_NEAR(Sum, 1.0, 1e-9);
  EXPECT_NEAR(F[FeatureId::FindFrac], 30.0 / 41.0, 1e-9);
}

TEST(FeaturesTest, HardwareFeaturesForwarded) {
  HardwareCounters Hw;
  Hw.L1Accesses = 100;
  Hw.L1Misses = 10;
  Hw.Branches = 50;
  Hw.BranchMispredicts = 5;
  Hw.Cycles = 1000;
  Hw.Instructions = 400;
  SoftwareFeatures Sw;
  Sw.FindCount = 10;
  Sw.ElementBytes = 32;
  FeatureVector F = extractFeatures(Sw, Hw, 64);
  EXPECT_DOUBLE_EQ(F[FeatureId::L1MissRate], 0.1);
  EXPECT_DOUBLE_EQ(F[FeatureId::BrMissRate], 0.1);
  EXPECT_DOUBLE_EQ(F[FeatureId::ElemPerBlock], 0.5);
  EXPECT_GT(F[FeatureId::CyclesPerCall], 0.0);
}

TEST(FeaturesTest, ResizeRatioMatchesFigure6Definition) {
  SoftwareFeatures Sw;
  Sw.InsertCount = 90;
  Sw.FindCount = 10;
  Sw.Resizes = 5;
  FeatureVector F = extractFeatures(Sw, HardwareCounters(), 64);
  EXPECT_DOUBLE_EQ(F[FeatureId::ResizeRatio], 0.05);
}

TEST(FeaturesTest, NamesAreUniqueAndStable) {
  std::vector<std::string> Names;
  for (unsigned I = 0; I != NumFeatures; ++I)
    Names.push_back(featureName(static_cast<FeatureId>(I)));
  for (unsigned I = 0; I != NumFeatures; ++I)
    for (unsigned J = I + 1; J != NumFeatures; ++J)
      EXPECT_NE(Names[I], Names[J]);
  EXPECT_EQ(Names[static_cast<unsigned>(FeatureId::BrMissRate)], "br_miss");
  EXPECT_EQ(Names[static_cast<unsigned>(FeatureId::ResizeRatio)],
            "resizing");
}

TEST(FeaturesTest, TsvRoundTrip) {
  FeatureVector F;
  for (unsigned I = 0; I != NumFeatures; ++I)
    F.Values[I] = 0.125 * I - 1.5;
  FeatureVector G;
  ASSERT_TRUE(FeatureVector::fromTsv(F.toTsv(), G));
  for (unsigned I = 0; I != NumFeatures; ++I)
    EXPECT_DOUBLE_EQ(F.Values[I], G.Values[I]);
  FeatureVector Bad;
  EXPECT_FALSE(FeatureVector::fromTsv("1\t2\tnot-enough", Bad));
}

//===----------------------------------------------------------------------===//
// Trace files
//===----------------------------------------------------------------------===//

static std::vector<TrainExample> sampleExamples() {
  std::vector<TrainExample> Out;
  for (unsigned I = 0; I != 5; ++I) {
    TrainExample Ex;
    Ex.Seed = 100 + I;
    Ex.BestDs = I % 2 ? DsKind::HashSet : DsKind::Vector;
    for (unsigned J = 0; J != NumFeatures; ++J)
      Ex.Features.Values[J] = I * 0.5 + J * 0.01;
    Out.push_back(Ex);
  }
  return Out;
}

TEST(TraceFileTest, StringRoundTrip) {
  std::vector<TrainExample> In = sampleExamples();
  std::string Text = trainingSetToString(In);
  std::vector<TrainExample> Out;
  ASSERT_TRUE(trainingSetFromString(Text, Out));
  ASSERT_EQ(Out.size(), In.size());
  for (size_t I = 0; I != In.size(); ++I) {
    EXPECT_EQ(Out[I].Seed, In[I].Seed);
    EXPECT_EQ(Out[I].BestDs, In[I].BestDs);
    for (unsigned J = 0; J != NumFeatures; ++J)
      EXPECT_DOUBLE_EQ(Out[I].Features.Values[J], In[I].Features.Values[J]);
  }
}

TEST(TraceFileTest, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "/brainy_trace_test.tsv";
  std::vector<TrainExample> In = sampleExamples();
  ASSERT_TRUE(writeTrainingSet(Path, In));
  std::vector<TrainExample> Out;
  ASSERT_TRUE(readTrainingSet(Path, Out));
  EXPECT_EQ(Out.size(), In.size());
  std::remove(Path.c_str());
}

TEST(TraceFileTest, MalformedLinesReported) {
  std::vector<TrainExample> Out;
  EXPECT_FALSE(trainingSetFromString("garbage-without-tabs\n", Out));
  EXPECT_TRUE(Out.empty());
  // Good line + bad line: parse succeeds partially, returns false.
  std::string Mixed = trainingSetToString(sampleExamples());
  Mixed += "badkind\t1\t0\n";
  Out.clear();
  EXPECT_FALSE(trainingSetFromString(Mixed, Out));
  EXPECT_EQ(Out.size(), 5u);
}

TEST(TraceFileTest, MissingFileFails) {
  std::vector<TrainExample> Out;
  EXPECT_FALSE(readTrainingSet("/nonexistent/path.tsv", Out));
}
