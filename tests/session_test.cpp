//===- tests/session_test.cpp - ProfileSession tests ----------------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "core/ProfileSession.h"

#include <gtest/gtest.h>

using namespace brainy;

namespace {

/// A deliberately lopsided two-container application: a hot search-heavy
/// vector and a barely used list.
void driveSession(ProfileSession &Session, Container &Hot, Container &Cold) {
  (void)Session;
  for (ds::Key K = 0; K != 400; ++K)
    Hot.insert(K);
  for (int I = 0; I != 3000; ++I)
    Hot.find(I % 800); // half hits, scanning deep
  Cold.insert(1);
  Cold.insert(2);
  Cold.iterate(2);
}

} // namespace

TEST(ProfileSessionTest, RegistersAndTracksContexts) {
  ProfileSession Session(MachineConfig::core2());
  Container &Hot = Session.create("parser.cpp:42 symbols", DsKind::Vector);
  Container &Cold = Session.create("driver.cpp:7 options", DsKind::List);
  EXPECT_EQ(Session.size(), 2u);
  driveSession(Session, Hot, Cold);

  Brainy Advisor; // untrained: recommends keeping originals
  auto Findings = Session.analyze(Advisor);
  ASSERT_EQ(Findings.size(), 2u);
  // Sorted by relative execution time: the hot vector first.
  EXPECT_EQ(Findings[0].Context, "parser.cpp:42 symbols");
  EXPECT_EQ(Findings[0].Original, DsKind::Vector);
  EXPECT_GT(Findings[0].CycleShare, 0.9);
  EXPECT_EQ(Findings[1].Original, DsKind::List);
  double ShareSum = Findings[0].CycleShare + Findings[1].CycleShare;
  EXPECT_NEAR(ShareSum, 1.0, 1e-9);
}

TEST(ProfileSessionTest, FeaturesAndOrderedness) {
  ProfileSession Session(MachineConfig::atom());
  Container &Hot = Session.create("a", DsKind::Vector);
  Container &Cold = Session.create("b", DsKind::List);
  driveSession(Session, Hot, Cold);
  Brainy Advisor;
  auto Findings = Session.analyze(Advisor);
  // The hot vector never iterates -> order-oblivious; the list iterates.
  EXPECT_TRUE(Findings[0].OrderOblivious);
  EXPECT_FALSE(Findings[1].OrderOblivious);
  EXPECT_GT(Findings[0].Features[FeatureId::FindFrac], 0.5);
}

TEST(ProfileSessionTest, ReportRendersPrioritisedTable) {
  ProfileSession Session(MachineConfig::core2());
  Container &Hot = Session.create("hot-site", DsKind::Vector);
  Container &Cold = Session.create("cold-site", DsKind::List);
  driveSession(Session, Hot, Cold);
  Brainy Advisor;
  std::string Report = Session.report(Advisor);
  EXPECT_NE(Report.find("hot-site"), std::string::npos);
  EXPECT_NE(Report.find("cold-site"), std::string::npos);
  EXPECT_NE(Report.find("priority"), std::string::npos);
  // Untrained advisor keeps everything.
  EXPECT_NE(Report.find("(keep)"), std::string::npos);
  // The hot site is listed before the cold one.
  EXPECT_LT(Report.find("hot-site"), Report.find("cold-site"));
}

TEST(ProfileSessionTest, TrainedAdvisorSuggestsChanges) {
  // Train a model that maps find-heavy profiles to hash_set, then check
  // the report routes the suggestion through.
  std::vector<TrainExample> Examples;
  for (unsigned I = 0; I != 40; ++I) {
    TrainExample Ex;
    Ex.BestDs = DsKind::HashSet;
    Ex.Features[FeatureId::FindFrac] = 0.8 + 0.001 * (I % 10);
    Ex.Features[FeatureId::FindCostAvg] = 200 + I;
    Examples.push_back(Ex);
  }
  NetConfig Net;
  Net.Epochs = 40;
  Brainy Advisor;
  Advisor.model(ModelKind::VectorOO) =
      BrainyModel::train(ModelKind::VectorOO, Examples, Net);

  ProfileSession Session(MachineConfig::core2());
  Container &Hot = Session.create("hot", DsKind::Vector);
  Container &Cold = Session.create("cold", DsKind::List);
  driveSession(Session, Hot, Cold);
  auto Findings = Session.analyze(Advisor);
  EXPECT_EQ(Findings[0].Recommended, DsKind::HashSet);
}
