//===- tests/integration_test.cpp - cross-module integration tests --------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
// End-to-end checks that span modules: containers driving the machine
// model, the Perflint baseline observing case studies, cross-machine
// behavioural differences, and the container substrate racing coherently.
//
//===----------------------------------------------------------------------===//

#include "baseline/Perflint.h"
#include "workloads/CaseStudy.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace brainy;

//===----------------------------------------------------------------------===//
// Machine-level behaviour driven through real containers
//===----------------------------------------------------------------------===//

TEST(IntegrationTest, L2CapacitySeparatesTheMachines) {
  // A pointer-chasing tree whose working set fits the Core2 L2 (4MB) but
  // not the Atom L2 (512KB) must show a much higher relative cost on Atom.
  auto Cost = [](const MachineConfig &Machine) {
    MachineModel Model(Machine);
    auto C = makeContainer(DsKind::Set, 64, &Model);
    Rng R(3);
    for (int I = 0; I != 12000; ++I) // ~12000 * 96B ≈ 1.1MB
      C->insert(static_cast<ds::Key>(R.nextBelow(1u << 28)));
    // Warm the caches with one pass, then measure the steady state: the
    // tree stays resident in the Core2's 4MB L2 but thrashes the Atom's
    // 512KB one.
    Rng Warm(17), Measure(17);
    for (int I = 0; I != 8000; ++I)
      C->find(static_cast<ds::Key>(Warm.nextBelow(1u << 28)));
    double WarmCycles = Model.cycles();
    for (int I = 0; I != 8000; ++I)
      C->find(static_cast<ds::Key>(Measure.nextBelow(1u << 28)));
    return Model.cycles() - WarmCycles;
  };
  double Core2 = Cost(MachineConfig::core2());
  double Atom = Cost(MachineConfig::atom());
  EXPECT_GT(Atom, Core2 * 1.5);
}

TEST(IntegrationTest, VectorScanIsCapacityImmune) {
  // The streaming prefetcher makes contiguous scans cheap regardless of
  // the working-set size — the real-world reason vector wins scans.
  auto PerElement = [](uint64_t N) {
    MachineModel Model(MachineConfig::atom());
    auto C = makeContainer(DsKind::Vector, 64, &Model);
    for (uint64_t I = 0; I != N; ++I)
      C->insert(static_cast<ds::Key>(I));
    Model.reset();
    C->find(-1); // full miss scan of N elements
    return Model.cycles() / static_cast<double>(N);
  };
  double Small = PerElement(1000);   // 64KB
  double Large = PerElement(40000);  // 2.5MB >> L2
  EXPECT_LT(Large, Small * 1.5);
}

TEST(IntegrationTest, ResizesShowUpInHardwareCounters) {
  MachineModel Model(MachineConfig::core2());
  auto C = makeContainer(DsKind::Vector, 8, &Model);
  for (ds::Key K = 0; K != 5000; ++K)
    C->insert(K);
  HardwareCounters Hw = Model.counters();
  // Every growth re-allocates: allocations ~ log2(5000/8) + 1.
  EXPECT_GE(Hw.Allocations, 9u);
  EXPECT_GT(Hw.BranchMispredicts, 0u);
  EXPECT_EQ(C->resizeCount(), Hw.Allocations);
}

//===----------------------------------------------------------------------===//
// Perflint observing the case studies
//===----------------------------------------------------------------------===//

TEST(IntegrationTest, PerflintSuggestsSetForEveryXalanInput) {
  // The paper's Figure 11 baseline behaviour: Perflint reports set for
  // test, train, and reference alike — including the train input where
  // that replacement is a regression.
  auto CS = makeXalanCache();
  PerflintCoefficients Coefficients; // unit coefficients suffice here
  for (unsigned Input = 0; Input != 3; ++Input) {
    PerflintAdvisor Advisor(CS->original(), Coefficients);
    CS->runProfiled(Input, MachineConfig::core2(), &Advisor);
    EXPECT_EQ(Advisor.recommend(), DsKind::Set)
        << CS->inputNames()[Input];
  }
}

TEST(IntegrationTest, PerflintAgreesOnRaytrace) {
  // Section 6.5: "This time Perflint selected the optimal data structure
  // just as Brainy did" — iterate-dominated lists are the easy case for
  // asymptotic models.
  auto CS = makeRaytrace();
  PerflintCoefficients Coefficients;
  PerflintAdvisor Advisor(CS->original(), Coefficients);
  CS->runProfiled(0, MachineConfig::core2(), &Advisor);
  EXPECT_EQ(Advisor.recommend(), DsKind::Vector);
}

//===----------------------------------------------------------------------===//
// Case-study profiles route to the right model families
//===----------------------------------------------------------------------===//

TEST(IntegrationTest, CaseStudyProfilesRouteToExpectedModels) {
  MachineConfig Machine = MachineConfig::core2();
  // Xalan (vector, find-only) -> order-oblivious vector model.
  auto Xalan = makeXalanCache();
  WorkloadRun P = Xalan->runProfiled(0, Machine);
  EXPECT_EQ(modelFor(Xalan->original(), P.Sw.orderOblivious()),
            ModelKind::VectorOO);
  // Raytrace (list, iterates) -> order-aware list model.
  auto Ray = makeRaytrace();
  P = Ray->runProfiled(0, Machine);
  EXPECT_EQ(modelFor(Ray->original(), P.Sw.orderOblivious()),
            ModelKind::List);
  // RelipmoC (set) -> set model.
  auto Rel = makeRelipmoC();
  P = Rel->runProfiled(0, Machine);
  EXPECT_EQ(modelFor(Rel->original(), P.Sw.orderOblivious()),
            ModelKind::Set);
}

//===----------------------------------------------------------------------===//
// Substrate coherence under racing
//===----------------------------------------------------------------------===//

TEST(IntegrationTest, RaceIsOrderIndependent) {
  // Each candidate runs on a fresh machine model, so the measurement of
  // one kind must not depend on which other kinds were raced.
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 300;
  AppSpec Spec = AppSpec::fromSeed(321, Cfg);
  MachineConfig MC = MachineConfig::core2();
  RaceResult AB =
      raceCandidates(Spec, {DsKind::Vector, DsKind::HashSet}, MC);
  RaceResult BA =
      raceCandidates(Spec, {DsKind::HashSet, DsKind::Vector}, MC);
  EXPECT_DOUBLE_EQ(AB.cyclesOf(DsKind::Vector),
                   BA.cyclesOf(DsKind::Vector));
  EXPECT_DOUBLE_EQ(AB.cyclesOf(DsKind::HashSet),
                   BA.cyclesOf(DsKind::HashSet));
  EXPECT_EQ(AB.Best, BA.Best);
}

TEST(IntegrationTest, AllNineKindsSurviveTheSameHarshTape) {
  // Stress every implementation with one long mixed tape; sizes must
  // agree within each family discipline and invariably match across the
  // map/set twins (identical algorithms).
  static const DsKind Kinds[] = {
      DsKind::Vector, DsKind::List,   DsKind::Deque,
      DsKind::Set,    DsKind::AvlSet, DsKind::HashSet,
      DsKind::Map,    DsKind::AvlMap, DsKind::HashMap};
  std::array<uint64_t, NumDsKinds> Sizes{};
  for (DsKind Kind : Kinds) {
    auto C = makeContainer(Kind, 16);
    Rng R(777);
    for (int I = 0; I != 5000; ++I) {
      ds::Key K = static_cast<ds::Key>(R.nextBelow(900));
      switch (R.nextBelow(5)) {
      case 0:
        C->insert(K);
        break;
      case 1:
        C->pushFront(K);
        break;
      case 2:
        C->erase(K);
        break;
      case 3:
        C->find(K);
        break;
      default:
        C->iterate(1 + R.nextBelow(8));
        break;
      }
    }
    Sizes[static_cast<unsigned>(Kind)] = C->size();
  }
  // Tree/hash twins implement identical unique-key semantics.
  EXPECT_EQ(Sizes[static_cast<unsigned>(DsKind::Set)],
            Sizes[static_cast<unsigned>(DsKind::AvlSet)]);
  EXPECT_EQ(Sizes[static_cast<unsigned>(DsKind::Set)],
            Sizes[static_cast<unsigned>(DsKind::HashSet)]);
  EXPECT_EQ(Sizes[static_cast<unsigned>(DsKind::Map)],
            Sizes[static_cast<unsigned>(DsKind::Set)]);
  // Sequences keep duplicates, so they end up at least as large.
  EXPECT_GE(Sizes[static_cast<unsigned>(DsKind::Vector)],
            Sizes[static_cast<unsigned>(DsKind::Set)]);
  EXPECT_EQ(Sizes[static_cast<unsigned>(DsKind::Vector)],
            Sizes[static_cast<unsigned>(DsKind::List)]);
  EXPECT_EQ(Sizes[static_cast<unsigned>(DsKind::Vector)],
            Sizes[static_cast<unsigned>(DsKind::Deque)]);
}
