//===- tests/containers_tree_test.cpp - RbTree/AvlTree tests --------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "containers/AvlTree.h"
#include "containers/RbTree.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace brainy;
using namespace brainy::ds;

//===----------------------------------------------------------------------===//
// Shared typed tests
//===----------------------------------------------------------------------===//

template <typename TreeT> class TreeTest : public ::testing::Test {};

using TreeTypes = ::testing::Types<RbTree, AvlTree>;
TYPED_TEST_SUITE(TreeTest, TreeTypes);

TYPED_TEST(TreeTest, InsertFindErase) {
  TypeParam T;
  EXPECT_TRUE(T.insert(5).Found);
  EXPECT_TRUE(T.insert(3).Found);
  EXPECT_TRUE(T.insert(8).Found);
  EXPECT_FALSE(T.insert(5).Found); // duplicate rejected
  EXPECT_EQ(T.size(), 3u);
  EXPECT_TRUE(T.find(3).Found);
  EXPECT_FALSE(T.find(4).Found);
  EXPECT_TRUE(T.erase(3).Found);
  EXPECT_FALSE(T.erase(3).Found);
  EXPECT_EQ(T.size(), 2u);
  EXPECT_TRUE(T.checkInvariants());
}

TYPED_TEST(TreeTest, SortedIteration) {
  TypeParam T;
  for (Key K : {9, 1, 8, 2, 7, 3})
    T.insert(K);
  Key Expected[] = {1, 2, 3, 7, 8, 9};
  for (unsigned I = 0; I != 6; ++I)
    EXPECT_EQ(T.at(I), Expected[I]);
}

TYPED_TEST(TreeTest, EraseAtRemovesInOrderPosition) {
  TypeParam T;
  for (Key K : {10, 20, 30, 40})
    T.insert(K);
  EXPECT_TRUE(T.eraseAt(1).Found); // removes 20
  EXPECT_FALSE(T.find(20).Found);
  EXPECT_TRUE(T.find(30).Found);
  EXPECT_FALSE(T.eraseAt(9).Found);
  EXPECT_TRUE(T.checkInvariants());
}

TYPED_TEST(TreeTest, FindCostBoundedByHeight) {
  TypeParam T;
  Rng R(3);
  for (int I = 0; I != 1024; ++I)
    T.insert(static_cast<Key>(R.nextBelow(1u << 28)));
  uint64_t H = T.height();
  OpResult Miss = T.find(-1);
  EXPECT_LE(Miss.Cost, H);
  EXPECT_GE(H, 10u); // log2(1024)
}

TYPED_TEST(TreeTest, RandomChurnKeepsInvariants) {
  TypeParam T;
  std::set<Key> Ref;
  Rng R(99);
  for (int I = 0; I != 6000; ++I) {
    Key K = static_cast<Key>(R.nextBelow(500));
    if (R.nextBool(0.5)) {
      OpResult Res = T.insert(K);
      bool RefInserted = Ref.insert(K).second;
      ASSERT_EQ(Res.Found, RefInserted);
    } else {
      OpResult Res = T.erase(K);
      ASSERT_EQ(Res.Found, Ref.erase(K) == 1);
    }
    ASSERT_EQ(T.size(), Ref.size());
    if (I % 500 == 0)
      ASSERT_TRUE(T.checkInvariants());
  }
  ASSERT_TRUE(T.checkInvariants());
  // Full content check.
  uint64_t I = 0;
  for (Key K : Ref)
    ASSERT_EQ(T.at(I++), K);
}

TYPED_TEST(TreeTest, IterateVisitsSortedAndWraps) {
  TypeParam T;
  for (Key K : {4, 2, 6})
    T.insert(K);
  // One pass + wrap: 2,4,6,2.
  EXPECT_EQ(T.iterate(3).Cost, 3u);
  EXPECT_EQ(T.iterate(1).Cost, 1u);
  EXPECT_TRUE(T.checkInvariants());
}

TYPED_TEST(TreeTest, ClearEmptiesAndReleases) {
  TypeParam T(32);
  for (Key K = 0; K != 50; ++K)
    T.insert(K);
  EXPECT_GT(T.simLiveBytes(), 0u);
  T.clear();
  EXPECT_EQ(T.size(), 0u);
  EXPECT_EQ(T.simLiveBytes(), 0u);
  EXPECT_TRUE(T.insert(1).Found);
}

TYPED_TEST(TreeTest, SortedInsertionStaysBalanced) {
  TypeParam T;
  for (Key K = 0; K != 4096; ++K)
    T.insert(K);
  EXPECT_TRUE(T.checkInvariants());
  // Both trees guarantee O(log n) height; RB allows ~2x log2, AVL ~1.44x.
  EXPECT_LE(T.height(), 26u);
  EXPECT_EQ(T.size(), 4096u);
}

//===----------------------------------------------------------------------===//
// Structure-specific expectations
//===----------------------------------------------------------------------===//

TEST(TreeContrastTest, AvlIsTighterOnSortedInsertion) {
  RbTree RB;
  AvlTree AVL;
  for (Key K = 0; K != 4096; ++K) {
    RB.insert(K);
    AVL.insert(K);
  }
  // AVL height is the information-theoretic minimum + ~1; RB is looser.
  EXPECT_LE(AVL.height(), 13u);
  EXPECT_GT(RB.height(), AVL.height());
}

TEST(TreeContrastTest, AvlNodesAreLeaner) {
  RbTree RB(8);
  AvlTree AVL(8);
  for (Key K = 0; K != 100; ++K) {
    RB.insert(K);
    AVL.insert(K);
  }
  // Compact AVL layout vs the four-word red-black node base.
  EXPECT_LT(AVL.simLiveBytes(), RB.simLiveBytes());
}

class TreeSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeSeedSweep, EraseAtAgreesWithReference) {
  RbTree RB;
  AvlTree AVL;
  std::set<Key> Ref;
  Rng R(GetParam());
  for (int I = 0; I != 300; ++I) {
    Key K = static_cast<Key>(R.nextBelow(10000));
    RB.insert(K);
    AVL.insert(K);
    Ref.insert(K);
  }
  while (!Ref.empty()) {
    uint64_t Pos = R.nextBelow(Ref.size());
    auto It = Ref.begin();
    std::advance(It, Pos);
    Key Expected = *It;
    ASSERT_EQ(RB.at(Pos), Expected);
    ASSERT_EQ(AVL.at(Pos), Expected);
    ASSERT_TRUE(RB.eraseAt(Pos).Found);
    ASSERT_TRUE(AVL.eraseAt(Pos).Found);
    Ref.erase(It);
    ASSERT_TRUE(RB.checkInvariants());
    ASSERT_TRUE(AVL.checkInvariants());
  }
  EXPECT_TRUE(RB.empty());
  EXPECT_TRUE(AVL.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeSeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55));
