//===- tests/core_test.cpp - Oracle / models / advisor unit tests ---------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "core/Brainy.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace brainy;

//===----------------------------------------------------------------------===//
// Oracle
//===----------------------------------------------------------------------===//

TEST(OracleTest, PicksMinimumCycles) {
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 300;
  AppSpec Spec = AppSpec::fromSeed(5, Cfg);
  MachineConfig MC = MachineConfig::core2();
  std::vector<DsKind> Candidates = {DsKind::Vector, DsKind::List,
                                    DsKind::Deque};
  RaceResult Race = raceCandidates(Spec, Candidates, MC);
  double BestCycles = Race.cyclesOf(Race.Best);
  for (DsKind Kind : Candidates) {
    EXPECT_GT(Race.cyclesOf(Kind), 0.0);
    EXPECT_LE(BestCycles, Race.cyclesOf(Kind));
  }
  EXPECT_GE(Race.Margin, 0.0);
}

TEST(OracleTest, SingleCandidateHasZeroMargin) {
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 100;
  AppSpec Spec = AppSpec::fromSeed(5, Cfg);
  RaceResult Race =
      raceCandidates(Spec, {DsKind::Vector}, MachineConfig::core2());
  EXPECT_EQ(Race.Best, DsKind::Vector);
  EXPECT_DOUBLE_EQ(Race.Margin, 0.0);
}

TEST(OracleTest, OracleBestHonoursOrderObliviousness) {
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 200;
  MachineConfig MC = MachineConfig::core2();
  for (uint64_t Seed = 0; Seed != 100; ++Seed) {
    AppSpec Spec = AppSpec::fromSeed(Seed, Cfg);
    if (Spec.OrderOblivious)
      continue;
    RaceResult Race = oracleBest(Spec, DsKind::Vector, MC);
    // Order-aware vector app: no associative cycles measured.
    EXPECT_DOUBLE_EQ(Race.cyclesOf(DsKind::HashSet), 0.0);
    EXPECT_GT(Race.cyclesOf(DsKind::Vector), 0.0);
    return;
  }
  FAIL() << "no order-aware seed found";
}

//===----------------------------------------------------------------------===//
// TrainingFramework
//===----------------------------------------------------------------------===//

namespace {

TrainOptions tinyOptions() {
  TrainOptions Opts;
  Opts.TargetPerDs = 4;
  Opts.MaxSeeds = 250;
  Opts.GenConfig.TotalInterfCalls = 150;
  Opts.GenConfig.MaxInitialSize = 300;
  Opts.Net.Epochs = 15;
  return Opts;
}

} // namespace

TEST(TrainingFrameworkTest, SpecMatchingSplitsFamilies) {
  TrainingFramework FW(tinyOptions(), MachineConfig::core2());
  unsigned VectorApps = 0, VectorOOApps = 0;
  for (uint64_t Seed = 1; Seed != 200; ++Seed) {
    bool Aware = FW.specMatchesModel(Seed, ModelKind::Vector);
    bool OO = FW.specMatchesModel(Seed, ModelKind::VectorOO);
    EXPECT_NE(Aware, OO); // exactly one family owns the app
    EXPECT_TRUE(FW.specMatchesModel(Seed, ModelKind::Set));
    VectorApps += Aware;
    VectorOOApps += OO;
  }
  EXPECT_GT(VectorApps, 0u);
  EXPECT_GT(VectorOOApps, 0u);
}

TEST(TrainingFrameworkTest, PhaseOneRespectsMargin) {
  TrainOptions Opts = tinyOptions();
  Opts.WinnerMargin = 0.05;
  TrainingFramework FW(Opts, MachineConfig::core2());
  PhaseOneResult P1 = FW.phaseOne(ModelKind::Vector);
  EXPECT_FALSE(P1.SeedDsPairs.empty());
  // Every recorded winner must actually win its race by the margin.
  for (const SeedBest &Pair : P1.SeedDsPairs) {
    AppSpec Spec = AppSpec::fromSeed(Pair.Seed, Opts.GenConfig);
    RaceResult Race =
        oracleBest(Spec, DsKind::Vector, MachineConfig::core2());
    EXPECT_EQ(Race.Best, Pair.BestDs);
    EXPECT_GE(Race.Margin, Opts.WinnerMargin);
  }
}

TEST(TrainingFrameworkTest, PhaseOneAllMatchesPerModelPhaseOne) {
  TrainOptions Opts = tinyOptions();
  TrainingFramework FW(Opts, MachineConfig::core2());
  auto All = FW.phaseOneAll();
  for (ModelKind MK : {ModelKind::Vector, ModelKind::Map}) {
    PhaseOneResult Single = FW.phaseOne(MK);
    const PhaseOneResult &Shared = All[static_cast<unsigned>(MK)];
    ASSERT_EQ(Shared.SeedDsPairs.size(), Single.SeedDsPairs.size());
    for (size_t I = 0; I != Single.SeedDsPairs.size(); ++I) {
      EXPECT_EQ(Shared.SeedDsPairs[I].Seed, Single.SeedDsPairs[I].Seed);
      EXPECT_EQ(Shared.SeedDsPairs[I].BestDs, Single.SeedDsPairs[I].BestDs);
    }
  }
}

TEST(TrainingFrameworkTest, PhaseTwoCapsPerClass) {
  TrainOptions Opts = tinyOptions();
  Opts.MaxPerDsPhase2 = 2;
  TrainingFramework FW(Opts, MachineConfig::core2());
  PhaseOneResult P1 = FW.phaseOne(ModelKind::Vector);
  std::vector<TrainExample> Examples = FW.phaseTwo(ModelKind::Vector, P1);
  std::array<unsigned, NumDsKinds> Counts{};
  for (const TrainExample &Ex : Examples)
    ++Counts[static_cast<unsigned>(Ex.BestDs)];
  for (unsigned C : Counts)
    EXPECT_LE(C, 2u);
}

TEST(TrainingFrameworkTest, ExamplesToDatasetLabels) {
  std::vector<TrainExample> Examples(3);
  Examples[0].BestDs = DsKind::Vector;
  Examples[1].BestDs = DsKind::Deque;
  Examples[2].BestDs = DsKind::HashSet; // not in candidate list -> dropped
  std::vector<DsKind> Candidates = {DsKind::Vector, DsKind::List,
                                    DsKind::Deque};
  Dataset D = examplesToDataset(Examples, Candidates);
  ASSERT_EQ(D.size(), 2u);
  EXPECT_EQ(D.Labels[0], 0u);
  EXPECT_EQ(D.Labels[1], 2u);
  EXPECT_EQ(D.dimension(), NumFeatures);
}

//===----------------------------------------------------------------------===//
// BrainyModel
//===----------------------------------------------------------------------===//

namespace {

/// Synthetic, trivially separable examples: find-heavy apps are labelled
/// hash_set; iterate-heavy apps are labelled vector.
std::vector<TrainExample> syntheticExamples(unsigned Count) {
  std::vector<TrainExample> Out;
  for (unsigned I = 0; I != Count; ++I) {
    TrainExample Ex;
    bool FindHeavy = I % 2 == 0;
    Ex.Seed = I;
    Ex.BestDs = FindHeavy ? DsKind::HashSet : DsKind::Vector;
    Ex.Features[FeatureId::FindFrac] = FindHeavy ? 0.9 : 0.05;
    Ex.Features[FeatureId::InsertFrac] = FindHeavy ? 0.1 : 0.95;
    Ex.Features[FeatureId::FindCostAvg] = FindHeavy ? 300 : 2;
    Ex.Features[FeatureId::AvgSizeLog] = 5 + (I % 7) * 0.1;
    Out.push_back(Ex);
  }
  return Out;
}

} // namespace

TEST(BrainyModelTest, LearnsSeparableRule) {
  NetConfig Cfg;
  Cfg.Epochs = 60;
  BrainyModel Model =
      BrainyModel::train(ModelKind::VectorOO, syntheticExamples(60), Cfg);
  ASSERT_TRUE(Model.trained());
  TrainExample FindHeavy = syntheticExamples(2)[0];
  TrainExample InsertHeavy = syntheticExamples(2)[1];
  EXPECT_EQ(Model.predict(FindHeavy.Features, true), DsKind::HashSet);
  EXPECT_EQ(Model.predict(InsertHeavy.Features, true), DsKind::Vector);
  EXPECT_GT(Model.accuracy(syntheticExamples(60), true), 0.95);
}

TEST(BrainyModelTest, UntrainedPredictsOriginal) {
  BrainyModel Model =
      BrainyModel::train(ModelKind::Set, {}, NetConfig());
  EXPECT_FALSE(Model.trained());
  FeatureVector F;
  EXPECT_EQ(Model.predict(F, true), DsKind::Set);
}

TEST(BrainyModelTest, OrderAwareMaskRestrictsSetModel) {
  // Train the Set model to always prefer hash_set, then ask for an
  // order-aware app: hash_set is illegal, so the pick must be in
  // {set, avl_set}.
  std::vector<TrainExample> Examples;
  for (unsigned I = 0; I != 40; ++I) {
    TrainExample Ex;
    Ex.BestDs = DsKind::HashSet;
    Ex.Features[FeatureId::FindFrac] = 0.9;
    Ex.Features[FeatureId::AvgSizeLog] = 4 + (I % 5) * 0.2;
    Examples.push_back(Ex);
  }
  NetConfig Cfg;
  Cfg.Epochs = 40;
  BrainyModel Model = BrainyModel::train(ModelKind::Set, Examples, Cfg);
  FeatureVector Probe = Examples[0].Features;
  EXPECT_EQ(Model.predict(Probe, /*AppOrderOblivious=*/true),
            DsKind::HashSet);
  DsKind Masked = Model.predict(Probe, /*AppOrderOblivious=*/false);
  EXPECT_TRUE(Masked == DsKind::Set || Masked == DsKind::AvlSet);
}

TEST(BrainyModelTest, PersistenceRoundTrip) {
  NetConfig Cfg;
  Cfg.Epochs = 30;
  BrainyModel Model =
      BrainyModel::train(ModelKind::VectorOO, syntheticExamples(40), Cfg);
  BrainyModel Loaded;
  ASSERT_TRUE(BrainyModel::fromString(Model.toString(), Loaded));
  EXPECT_EQ(Loaded.kind(), Model.kind());
  EXPECT_EQ(Loaded.trained(), Model.trained());
  for (const TrainExample &Ex : syntheticExamples(10))
    EXPECT_EQ(Loaded.predict(Ex.Features, true),
              Model.predict(Ex.Features, true));
}

//===----------------------------------------------------------------------===//
// Brainy bundle
//===----------------------------------------------------------------------===//

TEST(BrainyBundleTest, TrainSaveLoadRecommend) {
  TrainOptions Opts = tinyOptions();
  MachineConfig MC = MachineConfig::core2();
  Brainy B = Brainy::train(Opts, MC);
  EXPECT_EQ(B.machineName(), "core2");

  std::string Path = ::testing::TempDir() + "/brainy_bundle_test.txt";
  ASSERT_TRUE(B.saveFile(Path));
  Brainy Loaded;
  ASSERT_TRUE(Brainy::loadFile(Path, Loaded));
  EXPECT_EQ(Loaded.machineName(), "core2");

  // Same predictions after the round trip.
  AppSpec Spec = AppSpec::fromSeed(4242, Opts.GenConfig);
  ProfiledOutcome Out = runAppProfiled(Spec, DsKind::Vector, MC);
  EXPECT_EQ(B.recommend(DsKind::Vector, Out.Sw, Out.Features),
            Loaded.recommend(DsKind::Vector, Out.Sw, Out.Features));
  std::remove(Path.c_str());
}

TEST(BrainyBundleTest, TrainOrLoadUsesCache) {
  TrainOptions Opts = tinyOptions();
  MachineConfig MC = MachineConfig::core2();
  std::string Path = ::testing::TempDir() + "/brainy_cache_test.txt";
  std::remove(Path.c_str());
  Brainy First = Brainy::trainOrLoad(Opts, MC, Path, "tag-a");
  // Second call must load (we can't time it reliably, but it must succeed
  // and agree).
  Brainy Second = Brainy::trainOrLoad(Opts, MC, Path, "tag-a");
  EXPECT_EQ(First.toString(), Second.toString());
  // A different tag forces a retrain (file gets rewritten).
  Brainy Third = Brainy::trainOrLoad(Opts, MC, Path, "tag-b");
  EXPECT_EQ(Third.machineName(), "core2");
  std::remove(Path.c_str());
}

TEST(BrainyBundleTest, RecommendRoutesToModelFamily) {
  Brainy B; // untrained: every model predicts its original
  SoftwareFeatures Sw;
  Sw.FindCount = 10; // order-oblivious profile
  FeatureVector F;
  EXPECT_EQ(B.recommend(DsKind::Vector, Sw, F), DsKind::Vector);
  EXPECT_EQ(B.recommend(DsKind::Map, Sw, F), DsKind::Map);
  Sw.IterateCount = 5; // now order-aware
  EXPECT_EQ(B.recommend(DsKind::List, Sw, F), DsKind::List);
}
