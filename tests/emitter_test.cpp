//===- tests/emitter_test.cpp - C++ source emitter tests ------------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "appgen/CppEmitter.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

using namespace brainy;

namespace {

AppSpec sampleSpec(uint64_t Seed = 7) {
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 200;
  Cfg.MaxInitialSize = 100;
  return AppSpec::fromSeed(Seed, Cfg);
}

} // namespace

TEST(CppEmitterTest, ContainerTypeMapping) {
  EXPECT_EQ(emittedContainerType(DsKind::Vector), "std::vector<Element>");
  EXPECT_EQ(emittedContainerType(DsKind::List), "std::list<Element>");
  EXPECT_EQ(emittedContainerType(DsKind::Deque), "std::deque<Element>");
  EXPECT_EQ(emittedContainerType(DsKind::Set), "std::set<Element>");
  EXPECT_EQ(emittedContainerType(DsKind::HashSet),
            "std::unordered_set<Element, ElementHash>");
  // AVL has no std equivalent; std::set stands in (noted in the source).
  EXPECT_EQ(emittedContainerType(DsKind::AvlSet), "std::set<Element>");
}

TEST(CppEmitterTest, SourceMentionsSpecParameters) {
  AppSpec Spec = sampleSpec();
  std::string Source = emitCppSource(Spec, DsKind::HashSet);
  EXPECT_NE(Source.find("std::unordered_set<Element"), std::string::npos);
  EXPECT_NE(Source.find(formatStr("seed=%llu",
                                  (unsigned long long)Spec.Seed)),
            std::string::npos);
  EXPECT_NE(Source.find("xoshiro256**"), std::string::npos);
  EXPECT_NE(Source.find("int main()"), std::string::npos);
  // The two RNG stream salts must match the in-library driver.
  EXPECT_NE(Source.find("0xa24baed4963ee407ULL"), std::string::npos);
  EXPECT_NE(Source.find("0x9fb21c651e98df25ULL"), std::string::npos);
}

TEST(CppEmitterTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(emitCppSource(sampleSpec(3), DsKind::Vector),
            emitCppSource(sampleSpec(3), DsKind::Vector));
  EXPECT_NE(emitCppSource(sampleSpec(3), DsKind::Vector),
            emitCppSource(sampleSpec(4), DsKind::Vector));
  EXPECT_NE(emitCppSource(sampleSpec(3), DsKind::Vector),
            emitCppSource(sampleSpec(3), DsKind::List));
}

TEST(CppEmitterTest, AvlNoteAppears) {
  std::string Source = emitCppSource(sampleSpec(), DsKind::AvlSet);
  EXPECT_NE(Source.find("no AVL tree in the standard library"),
            std::string::npos);
}

TEST(CppEmitterTest, PaddingMatchesElementBytes) {
  AppConfig Cfg;
  AppSpec Spec = sampleSpec();
  Spec.ElemBytes = 64;
  std::string Source = emitCppSource(Spec, DsKind::Vector);
  EXPECT_NE(Source.find("std::array<unsigned char, 56> Pad{};"),
            std::string::npos);
  Spec.ElemBytes = 8; // key only, no pad member
  Source = emitCppSource(Spec, DsKind::Vector);
  EXPECT_EQ(Source.find("Pad{}"), std::string::npos);
}

TEST(CppEmitterTest, FileEmission) {
  std::string Path = ::testing::TempDir() + "/brainy_emit_test.cpp";
  ASSERT_TRUE(emitCppFile(sampleSpec(), DsKind::Set, Path));
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_FALSE(emitCppFile(sampleSpec(), DsKind::Set,
                           "/nonexistent/dir/file.cpp"));
}

TEST(CppEmitterTest, EmittedProgramCompilesAndRuns) {
  // The paper's Phase I contract: Compiler(AppGen(seed, DS)) must yield a
  // runnable program. Compile one emitted app with the host compiler.
  if (std::system("c++ --version > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no host c++ compiler available";

  std::string Dir = ::testing::TempDir();
  std::string Src = Dir + "/brainy_emitted_app.cpp";
  std::string Bin = Dir + "/brainy_emitted_app";
  ASSERT_TRUE(emitCppFile(sampleSpec(11), DsKind::Vector, Src));
  std::string Compile =
      "c++ -std=c++17 -O1 -o " + Bin + " " + Src + " 2> " + Dir +
      "/brainy_emit_errors.txt";
  ASSERT_EQ(std::system(Compile.c_str()), 0)
      << "emitted source failed to compile";
  ASSERT_EQ(std::system((Bin + " > /dev/null").c_str()), 0)
      << "emitted program failed to run";
  std::remove(Src.c_str());
  std::remove(Bin.c_str());
}
