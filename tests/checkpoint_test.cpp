//===- tests/checkpoint_test.cpp - Resumable wave checkpoints -------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
// The checkpoint store's contracts (DESIGN.md §13):
//
//  * `brainy-ckpt v1` round-trips the wave loop's entire state — results,
//    next offset, stopped flag — byte-for-byte;
//  * every corruption — bad magic/version/CRC, truncation, machine or
//    fingerprint mismatch, malformed or out-of-order records — rejects
//    the whole file with the right error code;
//  * a framework run that resumes from a partial run's checkpoint merges
//    identically to one that was never interrupted, regardless of the
//    worker width on either side of the restart;
//  * a corrupt or config-mismatched checkpoint cold-starts the run and is
//    then overwritten — it can cost resumability, never correctness.
//
//===----------------------------------------------------------------------===//

#include "core/Checkpoint.h"
#include "core/TrainingFramework.h"
#include "support/Error.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

using namespace brainy;

namespace {

using ResultArray = std::array<PhaseOneResult, NumModelKinds>;

void expectSameResults(const ResultArray &A, const ResultArray &B) {
  for (unsigned M = 0; M != NumModelKinds; ++M) {
    EXPECT_EQ(A[M].SeedsScanned, B[M].SeedsScanned) << "family " << M;
    EXPECT_EQ(A[M].MarginRejects, B[M].MarginRejects) << "family " << M;
    EXPECT_EQ(A[M].SkippedSeeds, B[M].SkippedSeeds) << "family " << M;
    ASSERT_EQ(A[M].SeedDsPairs.size(), B[M].SeedDsPairs.size())
        << "family " << M;
    for (size_t I = 0; I != A[M].SeedDsPairs.size(); ++I) {
      EXPECT_EQ(A[M].SeedDsPairs[I].Seed, B[M].SeedDsPairs[I].Seed);
      EXPECT_EQ(A[M].SeedDsPairs[I].BestDs, B[M].SeedDsPairs[I].BestDs);
    }
  }
}

/// A checkpoint exercising every record shape: pairs, skips, per-family
/// counters, a non-zero offset, and an asymmetric family distribution.
TrainCheckpoint sampleCheckpoint() {
  TrainCheckpoint Ck;
  Ck.NextOffset = 96;
  Ck.Stopped = false;
  PhaseOneResult &R0 = Ck.Results[0];
  R0.SeedsScanned = 41;
  R0.MarginRejects = 7;
  R0.SeedDsPairs = {{3, DsKind::Vector}, {9, static_cast<DsKind>(2)},
                    {40, static_cast<DsKind>(NumDsKinds - 1)}};
  R0.SkippedSeeds = {17, 18};
  PhaseOneResult &R1 = Ck.Results[1];
  R1.SeedsScanned = 12;
  R1.SeedDsPairs = {{5, static_cast<DsKind>(1)}};
  // Families 2.. stay empty — empty sections must round-trip too.
  return Ck;
}

constexpr uint64_t Fp = 0x1234abcd5678ef09ull;
const char *const MachineName = "core2";

TrainOptions tinyOptions() {
  TrainOptions Opts;
  Opts.TargetPerDs = 3;
  Opts.MaxSeeds = 200;
  Opts.GenConfig.TotalInterfCalls = 120;
  Opts.GenConfig.MaxInitialSize = 200;
  Opts.Net.Epochs = 10;
  Opts.Jobs = 1;
  return Opts;
}

std::vector<ModelKind> allModels() {
  std::vector<ModelKind> Models;
  for (unsigned M = 0; M != NumModelKinds; ++M)
    Models.push_back(static_cast<ModelKind>(M));
  return Models;
}

ErrCode parseFailure(const std::string &Text, uint64_t WantFp = Fp,
                     const std::string &Machine = MachineName) {
  Expected<TrainCheckpoint> Ck = parseCheckpoint(Text, WantFp, Machine);
  if (Ck) {
    ADD_FAILURE() << "corrupt checkpoint accepted";
    return ErrCode::InvalidValue;
  }
  return Ck.error().code();
}

//===----------------------------------------------------------------------===//
// Format round-trip
//===----------------------------------------------------------------------===//

TEST(CheckpointFormatTest, RoundTripsEveryField) {
  TrainCheckpoint Ck = sampleCheckpoint();
  std::string Text = checkpointToString(Ck, Fp, MachineName);
  Expected<TrainCheckpoint> Back = parseCheckpoint(Text, Fp, MachineName);
  ASSERT_TRUE(Back) << Back.error().message();
  EXPECT_EQ(Back->NextOffset, 96u);
  EXPECT_FALSE(Back->Stopped);
  expectSameResults(Ck.Results, Back->Results);
  // Serialisation is canonical: re-encoding the parse is byte-identical.
  EXPECT_EQ(checkpointToString(*Back, Fp, MachineName), Text);
}

TEST(CheckpointFormatTest, StoppedFlagRoundTrips) {
  TrainCheckpoint Ck = sampleCheckpoint();
  Ck.Stopped = true;
  Expected<TrainCheckpoint> Back =
      parseCheckpoint(checkpointToString(Ck, Fp, MachineName), Fp,
                      MachineName);
  ASSERT_TRUE(Back) << Back.error().message();
  EXPECT_TRUE(Back->Stopped);
}

TEST(CheckpointFormatTest, SaveThenLoadRoundTrips) {
  std::string Path = ::testing::TempDir() + "brainy_ckpt_roundtrip.txt";
  std::remove(Path.c_str());
  TrainCheckpoint Ck = sampleCheckpoint();
  Error E = saveCheckpoint(Path, Ck, Fp, MachineName);
  ASSERT_FALSE(E) << E.message();
  Expected<TrainCheckpoint> Back = loadCheckpoint(Path, Fp, MachineName);
  ASSERT_TRUE(Back) << Back.error().message();
  EXPECT_EQ(Back->NextOffset, Ck.NextOffset);
  expectSameResults(Ck.Results, Back->Results);
  std::remove(Path.c_str());
}

TEST(CheckpointFormatTest, MissingFileIsPlainIoError) {
  Expected<TrainCheckpoint> Ck = loadCheckpoint(
      ::testing::TempDir() + "brainy_ckpt_nonexistent.txt", Fp, MachineName);
  ASSERT_FALSE(Ck);
  EXPECT_EQ(Ck.error().code(), ErrCode::IoError);
}

//===----------------------------------------------------------------------===//
// Rejection matrix — every corruption refuses the whole file
//===----------------------------------------------------------------------===//

TEST(CheckpointFormatTest, RejectsEveryCorruption) {
  std::string Good = checkpointToString(sampleCheckpoint(), Fp, MachineName);
  ASSERT_TRUE(parseCheckpoint(Good, Fp, MachineName));

  EXPECT_EQ(parseFailure(""), ErrCode::Truncated);
  EXPECT_EQ(parseFailure("brainy-model v2\nsomething"), ErrCode::BadMagic);

  std::string Bad = Good;
  Bad[Bad.find("v1")] = 'v' + 1; // "brainy-ckpt w1"
  EXPECT_EQ(parseFailure(Bad), ErrCode::BadVersion);

  EXPECT_EQ(parseFailure(Good, Fp, "atom"), ErrCode::MachineMismatch);
  EXPECT_EQ(parseFailure(Good, Fp ^ 1), ErrCode::TagMismatch);

  // Truncation anywhere: in the header, at the payload boundary, inside a
  // record list.
  EXPECT_EQ(parseFailure(Good.substr(0, Good.find("machine"))),
            ErrCode::Truncated);
  EXPECT_EQ(parseFailure(Good.substr(0, Good.size() - 10)),
            ErrCode::Truncated);

  // One flipped payload byte fails the CRC before any record is parsed.
  Bad = Good;
  Bad[Bad.find("pair 3")] ^= 0x01;
  EXPECT_EQ(parseFailure(Bad), ErrCode::BadChecksum);

  // Trailing garbage after the declared payload is not ignored.
  EXPECT_EQ(parseFailure(Good + "extra\n"), ErrCode::BadFormat);

  // Structural damage past the CRC needs a re-encoded file: out-of-order
  // pairs, a kind outside the enum, a family header mismatch.
  TrainCheckpoint Disordered = sampleCheckpoint();
  std::swap(Disordered.Results[0].SeedDsPairs[0],
            Disordered.Results[0].SeedDsPairs[2]);
  EXPECT_EQ(parseFailure(checkpointToString(Disordered, Fp, MachineName)),
            ErrCode::BadFormat);

  TrainCheckpoint BadKind = sampleCheckpoint();
  BadKind.Results[0].SeedDsPairs[1].BestDs = static_cast<DsKind>(NumDsKinds);
  EXPECT_EQ(parseFailure(checkpointToString(BadKind, Fp, MachineName)),
            ErrCode::BadFormat);

  TrainCheckpoint BadSkips = sampleCheckpoint();
  BadSkips.Results[0].SkippedSeeds = {18, 17};
  EXPECT_EQ(parseFailure(checkpointToString(BadSkips, Fp, MachineName)),
            ErrCode::BadFormat);
}

TEST(CheckpointFormatTest, FingerprintSeparatesRunConfigurations) {
  TrainOptions Opts = tinyOptions();
  MachineConfig MC = MachineConfig::core2();
  uint64_t Base = checkpointFingerprint(Opts, MC, allModels(), false);

  // MaxSeeds is deliberately NOT fingerprinted: a wave-boundary
  // checkpoint is valid for any seed budget (that is what makes a
  // capped partial run a faithful stand-in for a killed full run).
  TrainOptions Budget = Opts;
  Budget.MaxSeeds = 5 * Opts.MaxSeeds;
  EXPECT_EQ(checkpointFingerprint(Budget, MC, allModels(), false), Base);

  // Every knob a wave decision depends on must separate.
  TrainOptions Target = Opts;
  Target.TargetPerDs += 1;
  EXPECT_NE(checkpointFingerprint(Target, MC, allModels(), false), Base);
  TrainOptions Margin = Opts;
  Margin.WinnerMargin *= 2;
  EXPECT_NE(checkpointFingerprint(Margin, MC, allModels(), false), Base);
  TrainOptions Excl = Opts;
  Excl.ExcludeSeeds = {42};
  EXPECT_NE(checkpointFingerprint(Excl, MC, allModels(), false), Base);
  TrainOptions Gen = Opts;
  Gen.GenConfig.TotalInterfCalls += 1;
  EXPECT_NE(checkpointFingerprint(Gen, MC, allModels(), false), Base);
  EXPECT_NE(checkpointFingerprint(Opts, MachineConfig::atom(), allModels(),
                                  false),
            Base);
  // A phaseOne({Model}) run cannot resume a phaseOneAll checkpoint.
  EXPECT_NE(checkpointFingerprint(Opts, MC, {ModelKind::Vector}, true), Base);
}

//===----------------------------------------------------------------------===//
// Framework resumability
//===----------------------------------------------------------------------===//

TEST(CheckpointResumeTest, CheckpointedRunMatchesSerialAndResumesStopped) {
  MachineConfig MC = MachineConfig::core2();
  std::string Path = ::testing::TempDir() + "brainy_ckpt_serial.txt";
  std::remove(Path.c_str());

  TrainingFramework Serial(tinyOptions(), MC);
  ResultArray Want = Serial.phaseOneAll();

  // Checkpointing forces the wave path even at Jobs=1; the ordered merge
  // is partition-independent, so the results must not move.
  TrainOptions Opts = tinyOptions();
  Opts.CheckpointFile = Path;
  TrainingFramework Checkpointed(Opts, MC);
  expectSameResults(Want, Checkpointed.phaseOneAll());

  // The finished run committed its final wave: the checkpoint is either
  // Stopped (every family full) or parked at the seed-budget boundary.
  // Either way a rerun restores the results wholesale without consuming
  // a single fresh seed.
  Expected<TrainCheckpoint> Ck = loadCheckpoint(
      Path,
      checkpointFingerprint(Opts, MC, allModels(),
                            /*CountUnmatchedSeeds=*/false),
      MC.Name);
  ASSERT_TRUE(Ck) << Ck.error().message();
  EXPECT_TRUE(Ck->Stopped || Ck->NextOffset == Opts.MaxSeeds)
      << "full run did not commit a final checkpoint";
  TrainingFramework Rerun(Opts, MC);
  expectSameResults(Want, Rerun.phaseOneAll());
  std::remove(Path.c_str());
}

TEST(CheckpointResumeTest, PartialRunResumesToIdenticalResults) {
  MachineConfig MC = MachineConfig::core2();
  std::string Path = ::testing::TempDir() + "brainy_ckpt_resume.txt";
  std::remove(Path.c_str());

  TrainingFramework Uninterrupted(tinyOptions(), MC);
  ResultArray Want = Uninterrupted.phaseOneAll();

  // Simulate a mid-run kill: cap MaxSeeds at two Jobs=1 waves. The
  // fingerprint ignores MaxSeeds, so the committed wave boundary is a
  // valid resume point for the full budget.
  TrainOptions Partial = tinyOptions();
  Partial.MaxSeeds = 32;
  Partial.CheckpointFile = Path;
  TrainingFramework PartialRun(Partial, MC);
  (void)PartialRun.phaseOneAll();

  TrainOptions Full = tinyOptions();
  Full.CheckpointFile = Path;
  Expected<TrainCheckpoint> Ck = loadCheckpoint(
      Path,
      checkpointFingerprint(Full, MC, allModels(),
                            /*CountUnmatchedSeeds=*/false),
      MC.Name);
  ASSERT_TRUE(Ck) << Ck.error().message();
  ASSERT_EQ(Ck->NextOffset, 32u) << "partial run committed the wrong boundary";

  TrainingFramework Resumed(Full, MC);
  expectSameResults(Want, Resumed.phaseOneAll());
  std::remove(Path.c_str());
}

TEST(CheckpointResumeTest, CorruptCheckpointColdStartsCleanly) {
  MachineConfig MC = MachineConfig::core2();
  std::string Path = ::testing::TempDir() + "brainy_ckpt_corrupt.txt";

  TrainingFramework Serial(tinyOptions(), MC);
  ResultArray Want = Serial.phaseOneAll();

  const char *Corruptions[] = {
      "not a checkpoint at all\n",
      "brainy-ckpt v1\nmachine core2\ntruncated right here",
      "brainy-ckpt v9\nmachine core2\n",
  };
  for (const char *Text : Corruptions) {
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    ASSERT_TRUE(F);
    std::fputs(Text, F);
    std::fclose(F);

    TrainOptions Opts = tinyOptions();
    Opts.CheckpointFile = Path;
    TrainingFramework FW(Opts, MC);
    expectSameResults(Want, FW.phaseOneAll());
  }
  std::remove(Path.c_str());
}

TEST(CheckpointResumeTest, MismatchedConfigCheckpointColdStartsCleanly) {
  MachineConfig MC = MachineConfig::core2();
  std::string Path = ::testing::TempDir() + "brainy_ckpt_mismatch.txt";
  std::remove(Path.c_str());

  // Leave behind a checkpoint from a run with a different Phase I
  // threshold — plausible operator error when tuning knobs mid-campaign.
  TrainOptions Other = tinyOptions();
  Other.TargetPerDs = 2;
  Other.CheckpointFile = Path;
  TrainingFramework OtherRun(Other, MC);
  (void)OtherRun.phaseOneAll();

  TrainOptions Opts = tinyOptions();
  Opts.CheckpointFile = Path;
  TrainingFramework Serial(tinyOptions(), MC);
  TrainingFramework FW(Opts, MC);
  expectSameResults(Serial.phaseOneAll(), FW.phaseOneAll());

  // The cold start overwrote the stale file with a matching checkpoint.
  Expected<TrainCheckpoint> Ck = loadCheckpoint(
      Path,
      checkpointFingerprint(Opts, MC, allModels(),
                            /*CountUnmatchedSeeds=*/false),
      MC.Name);
  EXPECT_TRUE(Ck) << Ck.error().message();
  std::remove(Path.c_str());
}

} // namespace
