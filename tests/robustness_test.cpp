//===- tests/robustness_test.cpp - Failure-path coverage ------------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
// Exercises the failure model of DESIGN.md §8: the error taxonomy, the
// deterministic fault injector, hardened bundle/trainset parsing (byte
// flips, truncation at every offset), atomic save, retry/skip semantics in
// the training waves, and graceful recommend degradation.
//
//===----------------------------------------------------------------------===//

#include "core/Brainy.h"
#include "core/TrainingFramework.h"
#include "profile/TraceFile.h"
#include "support/Config.h"
#include "support/Crc32.h"
#include "support/FaultInjector.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <set>
#include <string>
#include <vector>

using namespace brainy;

namespace {

/// Every test that arms the process-wide injector scopes it with this so a
/// failure cannot leak faults into later tests.
struct FaultGuard {
  explicit FaultGuard(const std::string &Spec) {
    Error E = FaultInjector::instance().configure(Spec);
    EXPECT_FALSE(E) << E.message();
  }
  ~FaultGuard() { FaultInjector::instance().clear(); }
};

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "brainy_robust_" + Name;
}

TrainOptions tinyOptions() {
  TrainOptions Opts;
  Opts.TargetPerDs = 3;
  Opts.MaxSeeds = 200;
  Opts.GenConfig.TotalInterfCalls = 120;
  Opts.GenConfig.MaxInitialSize = 200;
  Opts.Net.Epochs = 10;
  Opts.Jobs = 1;
  return Opts;
}

//===----------------------------------------------------------------------===//
// Error / Expected
//===----------------------------------------------------------------------===//

TEST(ErrorTest, MessageAndPrefix) {
  Error Ok;
  EXPECT_FALSE(Ok);
  EXPECT_EQ(Ok.code(), ErrCode::Ok);

  Error E(ErrCode::BadChecksum, "payload crc 0 want 1");
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "bad-checksum: payload crc 0 want 1");
  EXPECT_EQ(E.withPrefix("bundle 'x'").message(),
            "bad-checksum: bundle 'x': payload crc 0 want 1");
}

TEST(ErrorTest, ExpectedHoldsValueOrError) {
  Expected<int> V(42);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(*V, 42);
  EXPECT_EQ(V.valueOr(7), 42);

  Expected<int> E(Error(ErrCode::Truncated, "short"));
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.error().code(), ErrCode::Truncated);
  EXPECT_EQ(E.valueOr(7), 7);
}

TEST(ErrorTest, Crc32KnownVector) {
  // The standard CRC-32 check value.
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_NE(crc32(std::string("123456788")), crc32(std::string("123456789")));
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

TEST(FaultInjectorTest, SpecParsing) {
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_FALSE(FI.configure("eval:0.5:7"));
  EXPECT_TRUE(FI.enabled(FaultSite::Eval));
  EXPECT_FALSE(FI.enabled(FaultSite::FileIo));

  EXPECT_FALSE(FI.configure("io:1:1,eval:0:2,cache:0.25:3"));
  EXPECT_TRUE(FI.enabled(FaultSite::FileIo));
  EXPECT_TRUE(FI.enabled(FaultSite::CacheLookup));

  EXPECT_TRUE(static_cast<bool>(FI.configure("bogus:0.5:1")));
  EXPECT_TRUE(static_cast<bool>(FI.configure("eval:1.5:1")));
  EXPECT_TRUE(static_cast<bool>(FI.configure("eval:0.5")));
  // A failed configure leaves everything disarmed.
  EXPECT_FALSE(FI.enabled(FaultSite::Eval));
  FI.clear();
}

TEST(FaultInjectorTest, DecisionsAreDeterministic) {
  FaultGuard Guard("eval:0.5:99");
  FaultInjector &FI = FaultInjector::instance();
  std::vector<bool> First, Second;
  for (uint64_t Key = 0; Key != 256; ++Key)
    First.push_back(FI.shouldFail(FaultSite::Eval, Key, 0));
  for (uint64_t Key = 0; Key != 256; ++Key)
    Second.push_back(FI.shouldFail(FaultSite::Eval, Key, 0));
  EXPECT_EQ(First, Second);
  // Roughly half the keys should fail at rate 0.5.
  size_t Fails = 0;
  for (bool B : First)
    Fails += B;
  EXPECT_GT(Fails, 64u);
  EXPECT_LT(Fails, 192u);
  // The salt distinguishes probes under the same key.
  bool SaltMatters = false;
  for (uint64_t Key = 0; Key != 64 && !SaltMatters; ++Key)
    SaltMatters = FI.shouldFail(FaultSite::Eval, Key, 0) !=
                  FI.shouldFail(FaultSite::Eval, Key, 1);
  EXPECT_TRUE(SaltMatters);
}

TEST(FaultInjectorTest, RateZeroAndOne) {
  FaultGuard Guard("eval:0:1,io:1:1");
  FaultInjector &FI = FaultInjector::instance();
  for (uint64_t Key = 1; Key != 64; ++Key) {
    EXPECT_FALSE(FI.shouldFail(FaultSite::Eval, Key));
    EXPECT_TRUE(FI.shouldFail(FaultSite::FileIo, Key));
  }
  EXPECT_EQ(FI.injectedCount(FaultSite::Eval), 0u);
  EXPECT_EQ(FI.injectedCount(FaultSite::FileIo), 63u);
}

//===----------------------------------------------------------------------===//
// Config numeric parsing
//===----------------------------------------------------------------------===//

TEST(ConfigRobustnessTest, RangeErrorsNameKeyAndLine) {
  Config C = Config::fromString("big = 99999999999999999999999999\n"
                                "junk = 12abc\n");
  EXPECT_EQ(C.getInt("big", 7), 7);
  EXPECT_EQ(C.getInt("junk", 9), 9);
  ASSERT_GE(C.errors().size(), 2u);
  bool SawRange = false, SawJunk = false;
  for (const std::string &E : C.errors()) {
    if (E.find("out-of-range") != std::string::npos &&
        E.find("'big'") != std::string::npos &&
        E.find("line 1") != std::string::npos)
      SawRange = true;
    if (E.find("invalid-value") != std::string::npos &&
        E.find("'junk'") != std::string::npos &&
        E.find("line 2") != std::string::npos)
      SawJunk = true;
  }
  EXPECT_TRUE(SawRange);
  EXPECT_TRUE(SawJunk);
}

TEST(ConfigRobustnessTest, DoubleTrailingJunkSurfaces) {
  Config C = Config::fromString("rate = 0.5x\n");
  EXPECT_DOUBLE_EQ(C.getDouble("rate", 2.0), 2.0);
  ASSERT_FALSE(C.errors().empty());
  EXPECT_NE(C.errors().front().find("'rate'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Bundle hardening
//===----------------------------------------------------------------------===//

TEST(BundleRobustnessTest, TruncationRejectedAtEveryOffset) {
  Brainy B;
  std::string Text = B.toString();
  ASSERT_GT(Text.size(), 64u);
  for (size_t Len = 0; Len != Text.size(); ++Len) {
    Brainy Out;
    Error E = Brainy::parse(Text.substr(0, Len), Out);
    ASSERT_TRUE(static_cast<bool>(E)) << "prefix of " << Len << " parsed";
    EXPECT_FALSE(E.message().empty());
  }
  // The full text round-trips.
  Brainy Out;
  EXPECT_FALSE(Brainy::parse(Text, Out));
}

TEST(BundleRobustnessTest, ByteFlipRejectedAtEveryOffset) {
  Brainy B;
  std::string Text = B.toString();
  for (size_t I = 0; I != Text.size(); ++I) {
    std::string Bad = Text;
    Bad[I] ^= 0x01;
    Brainy Out;
    Error E = Brainy::parse(Bad, Out);
    EXPECT_TRUE(static_cast<bool>(E))
        << "flip at offset " << I << " ('" << Text[I] << "') parsed";
  }
}

TEST(BundleRobustnessTest, ErrorCodesAreDiagnosable) {
  Brainy B;
  std::string Text = B.toString();
  Brainy Out;

  EXPECT_EQ(Brainy::parse("", Out).code(), ErrCode::Truncated);
  EXPECT_EQ(Brainy::parse("not-a-bundle v2\n", Out).code(),
            ErrCode::BadMagic);
  EXPECT_EQ(Brainy::parse("brainy-bundle v1\n", Out).code(),
            ErrCode::BadVersion);

  // Corrupt one payload byte: the CRC catches it before model parsing.
  std::string Bad = Text;
  Bad[Bad.size() - 2] ^= 0x40;
  EXPECT_EQ(Brainy::parse(Bad, Out).code(), ErrCode::BadChecksum);

  // Trailing garbage past the declared payload size.
  EXPECT_EQ(Brainy::parse(Text + "extra", Out).code(), ErrCode::BadFormat);
}

TEST(BundleRobustnessTest, FailedLoadNeverChangesRecommendations) {
  std::string Path = tmpPath("truncated.txt");
  Brainy B;
  ASSERT_TRUE(B.saveFile(Path));
  std::string Text = B.toString();
  for (size_t Len : {size_t(0), Text.size() / 3, Text.size() - 1}) {
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(F, nullptr);
    std::fwrite(Text.data(), 1, Len, F);
    std::fclose(F);

    Expected<Brainy> L = Brainy::load(Path);
    ASSERT_FALSE(static_cast<bool>(L)) << "truncated at " << Len;
    EXPECT_FALSE(L.error().message().empty());

    // The bool wrapper must leave the output advisor untouched, so every
    // recommendation stays "keep the original".
    Brainy Out;
    EXPECT_FALSE(Brainy::loadFile(Path, Out));
    FeatureVector Fv{};
    for (unsigned M = 0; M != NumModelKinds; ++M) {
      auto Kind = static_cast<ModelKind>(M);
      EXPECT_EQ(Out.recommendWith(Kind, Fv, modelIsOrderOblivious(Kind)),
                modelOriginal(Kind));
    }
  }
  std::remove(Path.c_str());
}

TEST(BundleRobustnessTest, AtomicSavePreservesPriorBundle) {
  std::string Path = tmpPath("atomic.txt");
  Brainy B;
  ASSERT_FALSE(B.save(Path));
  std::string Before = B.toString();

  {
    // Every file-I/O probe fails: the save must report the injected fault
    // and must not disturb the existing bundle or leave a temp file.
    FaultGuard Guard("io:1:3");
    Error E = B.save(Path);
    ASSERT_TRUE(static_cast<bool>(E));
    EXPECT_EQ(E.code(), ErrCode::FaultInjected);
    // load is also fault-gated while armed.
    EXPECT_FALSE(static_cast<bool>(Brainy::load(Path)));
  }
  std::FILE *Tmp = std::fopen((Path + ".tmp").c_str(), "rb");
  EXPECT_EQ(Tmp, nullptr);
  if (Tmp)
    std::fclose(Tmp);

  Expected<Brainy> After = Brainy::load(Path);
  ASSERT_TRUE(static_cast<bool>(After)) << After.error().message();
  EXPECT_EQ(After->toString(), Before);
  std::remove(Path.c_str());
}

TEST(BundleRobustnessTest, TrainOrLoadRetrainsOverCorruptBundle) {
  std::string Path = tmpPath("corrupt.txt");
  {
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(F, nullptr);
    std::fputs("brainy-bundle v2\ngarbage", F);
    std::fclose(F);
  }
  TrainOptions Opts = tinyOptions();
  Opts.TargetPerDs = 2;
  Opts.MaxSeeds = 80;
  Brainy B = Brainy::trainOrLoad(Opts, MachineConfig::core2(), Path, "tiny");
  EXPECT_EQ(B.machineName(), "core2");
  EXPECT_EQ(B.tag(), "tiny");
  // The corrupt file was replaced with a freshly saved valid bundle.
  Expected<Brainy> Reloaded = Brainy::load(Path, "core2", "tiny");
  ASSERT_TRUE(static_cast<bool>(Reloaded)) << Reloaded.error().message();
  EXPECT_EQ(Reloaded->toString(), B.toString());
  std::remove(Path.c_str());
}

TEST(BundleRobustnessTest, MachineAndTagValidated) {
  std::string Path = tmpPath("mismatch.txt");
  TrainOptions Opts = tinyOptions();
  Opts.TargetPerDs = 2;
  Opts.MaxSeeds = 80;
  Brainy B = Brainy::trainOrLoad(Opts, MachineConfig::core2(), Path, "t1");
  EXPECT_EQ(Brainy::load(Path, "atom", "t1").error().code(),
            ErrCode::MachineMismatch);
  EXPECT_EQ(Brainy::load(Path, "core2", "t2").error().code(),
            ErrCode::TagMismatch);
  EXPECT_TRUE(static_cast<bool>(Brainy::load(Path, "core2", "t1")));
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Graceful recommend degradation
//===----------------------------------------------------------------------===//

TEST(RecommendDegradationTest, UntrainedModelKeepsOriginalAndCounts) {
  Brainy B;
  FeatureVector Fv{};
  EXPECT_EQ(B.fallbackCount(), 0u);
  EXPECT_EQ(B.recommendWith(ModelKind::Set, Fv, false), DsKind::Set);
  EXPECT_EQ(B.recommendWith(ModelKind::Vector, Fv, false), DsKind::Vector);
  EXPECT_EQ(B.fallbackCount(), 2u);
}

TEST(RecommendDegradationTest, StrictModeThrowsModelUnavailable) {
  Brainy B;
  B.setStrict(true);
  FeatureVector Fv{};
  try {
    B.recommendWith(ModelKind::Map, Fv, false);
    FAIL() << "strict recommend on an untrained model did not throw";
  } catch (const ErrorException &E) {
    EXPECT_EQ(E.error().code(), ErrCode::ModelUnavailable);
  }
  EXPECT_EQ(B.fallbackCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Trainset hardening
//===----------------------------------------------------------------------===//

TEST(TrainsetRobustnessTest, MalformedSeedFieldRejected) {
  std::vector<TrainExample> Out;
  // Junk between the tabs must not silently parse as a seed.
  EXPECT_FALSE(trainingSetFromString("vector\t12junk\t0\n", Out));
  EXPECT_FALSE(trainingSetFromString("vector\t\t0\n", Out));
  EXPECT_TRUE(Out.empty());
}

TEST(TrainsetRobustnessTest, WriteIsFaultGatedAndAtomic) {
  std::string Path = tmpPath("trainset.tsv");
  std::vector<TrainExample> Examples(1);
  Examples[0].Seed = 5;
  Examples[0].BestDs = DsKind::Vector;
  {
    FaultGuard Guard("io:1:4");
    EXPECT_FALSE(writeTrainingSet(Path, Examples));
  }
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_EQ(F, nullptr) << "fault-gated write still created the file";
  if (F)
    std::fclose(F);
  EXPECT_TRUE(writeTrainingSet(Path, Examples));
  std::vector<TrainExample> Back;
  EXPECT_TRUE(readTrainingSet(Path, Back));
  ASSERT_EQ(Back.size(), 1u);
  EXPECT_EQ(Back[0].Seed, 5u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Fault-isolating training waves
//===----------------------------------------------------------------------===//

using ResultArray = std::array<PhaseOneResult, NumModelKinds>;

void expectSameResults(const ResultArray &A, const ResultArray &B) {
  for (unsigned M = 0; M != NumModelKinds; ++M) {
    EXPECT_EQ(A[M].SeedsScanned, B[M].SeedsScanned) << "family " << M;
    EXPECT_EQ(A[M].MarginRejects, B[M].MarginRejects) << "family " << M;
    EXPECT_EQ(A[M].SkippedSeeds, B[M].SkippedSeeds) << "family " << M;
    ASSERT_EQ(A[M].SeedDsPairs.size(), B[M].SeedDsPairs.size())
        << "family " << M;
    for (size_t I = 0; I != A[M].SeedDsPairs.size(); ++I) {
      EXPECT_EQ(A[M].SeedDsPairs[I].Seed, B[M].SeedDsPairs[I].Seed);
      EXPECT_EQ(A[M].SeedDsPairs[I].BestDs, B[M].SeedDsPairs[I].BestDs);
    }
  }
}

TEST(FaultyTrainingTest, SkippedSeedsAreRecordedAndSurvivorsUnperturbed) {
  // With retries exhausted instantly (EvalRetries=0) and a 30% eval fault
  // rate, a healthy fraction of seeds is skipped.
  TrainOptions Opts = tinyOptions();
  Opts.EvalRetries = 0;
  MachineConfig MC = MachineConfig::core2();

  ResultArray Faulty;
  {
    FaultGuard Guard("eval:0.3:7");
    TrainingFramework FW(Opts, MC);
    Faulty = FW.phaseOneAll();
  }
  std::set<uint64_t> Skipped;
  for (unsigned M = 0; M != NumModelKinds; ++M)
    Skipped.insert(Faulty[M].SkippedSeeds.begin(),
                   Faulty[M].SkippedSeeds.end());
  ASSERT_FALSE(Skipped.empty()) << "fault rate produced no skips";

  // The acceptance property: a no-fault run excluding exactly the skipped
  // seeds reproduces the fault run bit-for-bit — surviving (seed, bestDS)
  // pairs, counters, and the skip records themselves.
  TrainOptions ExcludeOpts = Opts;
  ExcludeOpts.ExcludeSeeds = Skipped;
  TrainingFramework Clean(ExcludeOpts, MC);
  expectSameResults(Faulty, Clean.phaseOneAll());
}

TEST(FaultyTrainingTest, FaultRunIdenticalAcrossJobs) {
  TrainOptions Serial = tinyOptions();
  Serial.EvalRetries = 0;
  TrainOptions Parallel = Serial;
  Parallel.Jobs = 3;
  MachineConfig MC = MachineConfig::core2();

  FaultGuard Guard("eval:0.25:11");
  TrainingFramework A(Serial, MC);
  TrainingFramework B(Parallel, MC);
  ASSERT_EQ(B.jobs(), 3u);
  expectSameResults(A.phaseOneAll(), B.phaseOneAll());
}

TEST(FaultyTrainingTest, RetriesRecoverTransientFaults) {
  // At rate r with k attempts the per-(seed, attempt) decisions are
  // independent, so generous retries recover almost every seed; with the
  // tiny scan and rate 0.25, 4 attempts make skips vanishingly rare.
  TrainOptions Opts = tinyOptions();
  Opts.EvalRetries = 3;
  Opts.MaxSeeds = 60;
  MachineConfig MC = MachineConfig::core2();

  FaultGuard Guard("eval:0.25:13");
  TrainingFramework FW(Opts, MC);
  ResultArray R = FW.phaseOneAll();
  size_t TotalSkips = 0;
  for (unsigned M = 0; M != NumModelKinds; ++M)
    TotalSkips += R[M].SkippedSeeds.size();
  EXPECT_EQ(TotalSkips, 0u);
  EXPECT_GT(FaultInjector::instance().injectedCount(FaultSite::Eval), 0u);
}

TEST(FaultyTrainingTest, PhaseTwoDropsFailedExamplesOnly) {
  TrainOptions Opts = tinyOptions();
  Opts.EvalRetries = 0;
  MachineConfig MC = MachineConfig::core2();
  TrainingFramework FW(Opts, MC);
  PhaseOneResult P1 = FW.phaseOne(ModelKind::VectorOO);
  ASSERT_FALSE(P1.SeedDsPairs.empty());

  std::vector<TrainExample> Clean = FW.phaseTwo(ModelKind::VectorOO, P1);
  std::vector<TrainExample> Faulty;
  {
    FaultGuard Guard("eval:0.4:17");
    Faulty = FW.phaseTwo(ModelKind::VectorOO, P1);
  }
  EXPECT_LT(Faulty.size(), Clean.size());
  // Survivors keep the recorded order and identical features: dropping an
  // example never perturbs its neighbours.
  size_t CI = 0;
  for (const TrainExample &Ex : Faulty) {
    while (CI != Clean.size() && Clean[CI].Seed != Ex.Seed)
      ++CI;
    ASSERT_NE(CI, Clean.size()) << "survivor not in clean run order";
    EXPECT_EQ(Ex.BestDs, Clean[CI].BestDs);
    EXPECT_EQ(Ex.Features.Values, Clean[CI].Features.Values);
    ++CI;
  }
}

TEST(FaultyTrainingTest, CacheFaultsRemeasureWithoutChangingResults) {
  // A cache fault models a corrupt entry detected on a shared-map hit:
  // the key is remeasured. Measurements are pure, so results match a
  // fault-free run exactly.
  MeasurementCache Cache;
  unsigned Measured = 0;
  auto Measure = [&] {
    ++Measured;
    return 42.0;
  };
  {
    MeasurementCache::Shard S = Cache.shard();
    EXPECT_DOUBLE_EQ(S.cyclesOf(1, DsKind::Vector, Measure), 42.0);
    Cache.merge(std::move(S));
  }
  EXPECT_EQ(Measured, 1u);
  {
    FaultGuard Guard("cache:1:5");
    MeasurementCache::Shard S = Cache.shard();
    EXPECT_DOUBLE_EQ(S.cyclesOf(1, DsKind::Vector, Measure), 42.0);
    Cache.merge(std::move(S));
    EXPECT_EQ(Measured, 2u) << "corrupt hit was not remeasured";
  }
  // Disarmed again: the (identical) remeasured value serves hits.
  MeasurementCache::Shard S = Cache.shard();
  EXPECT_DOUBLE_EQ(S.cyclesOf(1, DsKind::Vector, Measure), 42.0);
  EXPECT_EQ(Measured, 2u);
}

} // namespace
