//===- tests/rewrite_test.cpp - brainy apply rewriting tests --------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
// Covers the `brainy apply` stack (DESIGN.md §14) bottom-up: the byte
// patcher (splice, dedup, overlap refusal, diff, fault-salted save), the
// interface-mapping rule table, and the planner/verifier loop — including
// the rejection path (a refused patch is reported and never emitted) and
// machine-checked idempotence (apply on applied output plans nothing).
//
//===----------------------------------------------------------------------===//

#include "analysis/Patcher.h"
#include "analysis/Rewrite.h"
#include "analysis/RewriteRules.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace brainy;
using namespace brainy::analysis;

namespace {

struct FaultGuard {
  explicit FaultGuard(const std::string &Spec) {
    Error E = FaultInjector::instance().configure(Spec);
    EXPECT_FALSE(E) << E.message();
  }
  ~FaultGuard() { FaultInjector::instance().clear(); }
};

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "brainy_rewrite_" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

const PlanEntry *entryFor(const FileRewrite &FR, const std::string &Name) {
  for (const PlanEntry &E : FR.Entries)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Patcher: applyEdits
//===----------------------------------------------------------------------===//

TEST(Patcher, SplicesReplacesInsertsAndDedupes) {
  std::string Src = "std::map<int, int> A, B;";
  // One identical type edit per declarator (the multi-declarator case)
  // plus an insertion at the front: duplicates must collapse, order must
  // not matter.
  std::vector<Edit> Edits = {
      {5, 8, "unordered_map"}, {0, 0, "// x\n"}, {5, 8, "unordered_map"}};
  Expected<std::string> Out = applyEdits(Src, Edits);
  ASSERT_TRUE(Out) << Out.error().message();
  EXPECT_EQ(*Out, "// x\nstd::unordered_map<int, int> A, B;");
}

TEST(Patcher, RefusesOverlapsAndOutOfRangeSpans) {
  std::string Src = "abcdef";
  Expected<std::string> Overlap =
      applyEdits(Src, {{1, 4, "X"}, {3, 5, "Y"}});
  ASSERT_FALSE(Overlap);
  Expected<std::string> Nested = applyEdits(Src, {{0, 6, "X"}, {2, 3, "Y"}});
  ASSERT_FALSE(Nested);
  Expected<std::string> OutOfRange = applyEdits(Src, {{4, 9, "X"}});
  ASSERT_FALSE(OutOfRange);
  // Same span, different replacement text: a planner inconsistency, not
  // a dedupable duplicate.
  Expected<std::string> Conflict =
      applyEdits(Src, {{1, 2, "X"}, {1, 2, "Y"}});
  ASSERT_FALSE(Conflict);
}

TEST(Patcher, UnifiedDiffIsEmptyOnIdenticalAndFormatsHunks) {
  EXPECT_EQ(unifiedDiff("a\nb\n", "a\nb\n", "a/f", "b/f"), "");
  std::string D = unifiedDiff("one\ntwo\nthree\n", "one\n2\nthree\n", "a/f",
                              "b/f");
  EXPECT_NE(D.find("--- a/f\n"), std::string::npos);
  EXPECT_NE(D.find("+++ b/f\n"), std::string::npos);
  EXPECT_NE(D.find("-two\n"), std::string::npos);
  EXPECT_NE(D.find("+2\n"), std::string::npos);
  EXPECT_NE(D.find("@@ -"), std::string::npos);
}

TEST(Patcher, SaveFileAtomicFaultLeavesExistingFileUntouched) {
  std::string Path = tmpPath("atomic.txt");
  ASSERT_FALSE(saveFileAtomic(Path, "first\n"));
  EXPECT_EQ(slurp(Path), "first\n");
  {
    FaultGuard Guard("io:1:42"); // every io probe fails
    Error E = saveFileAtomic(Path, "second\n");
    EXPECT_TRUE(E);
    EXPECT_EQ(slurp(Path), "first\n");
  }
  ASSERT_FALSE(saveFileAtomic(Path, "second\n"));
  EXPECT_EQ(slurp(Path), "second\n");
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// RewriteRules
//===----------------------------------------------------------------------===//

TEST(RewriteRules, IdentityWithinFamiliesMinusListOnlySort) {
  RewriteRuleTable T = RewriteRuleTable::defaults();
  const OpRule *R =
      T.lookup(Family::MapLike, Family::MapLike, Op::SubscriptKey);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Post, Op::SubscriptKey);
  EXPECT_EQ(R->Member, nullptr);
  // Member sort is list-only among the sequences: the identity table has
  // a deliberate gap so Sort never moves off std::list.
  EXPECT_EQ(T.lookup(Family::Sequence, Family::Sequence, Op::Sort), nullptr);
}

TEST(RewriteRules, SequenceToSetLikeMapsTheCheckedUpgradeOnly) {
  RewriteRuleTable T = RewriteRuleTable::defaults();
  const OpRule *Push = T.lookup(Family::Sequence, Family::SetLike,
                                Op::PushBack);
  ASSERT_NE(Push, nullptr);
  EXPECT_STREQ(Push->Member, "insert");
  const OpRule *Find = T.lookup(Family::Sequence, Family::SetLike, Op::Find);
  ASSERT_NE(Find, nullptr);
  EXPECT_STREQ(Find->Member, "find");
  // Positional access has no set-like equivalent: gap.
  EXPECT_EQ(T.lookup(Family::Sequence, Family::SetLike, Op::SubscriptKey),
            nullptr);
  EXPECT_FALSE(T.total(Family::Sequence, Family::SetLike,
                       {Op::PushBack, Op::SubscriptIndex}));
  EXPECT_TRUE(T.total(Family::Sequence, Family::SetLike,
                      {Op::PushBack, Op::Find, Op::SizeEmpty}));
}

TEST(RewriteRules, AdvisoryCandidatesHaveNoStdSpelling) {
  EXPECT_STREQ(typeSpellingFor(Candidate::SplayMap), "");
  EXPECT_STREQ(typeSpellingFor(Candidate::FlatSet), "");
  EXPECT_STREQ(headerFor(Candidate::SplaySet), "");
  EXPECT_STREQ(typeSpellingFor(Candidate::UnorderedMap),
               "std::unordered_map");
  EXPECT_STREQ(headerFor(Candidate::UnorderedMap), "<unordered_map>");
}

//===----------------------------------------------------------------------===//
// Planner end-to-end
//===----------------------------------------------------------------------===//

TEST(Apply, UpgradesUniteratedMapWithHeaderFixup) {
  std::string Src = "#include <cstdio>\n"
                    "#include <map>\n"
                    "std::map<int, int> M;\n"
                    "void f() {\n"
                    "  M[3] = 4;\n"
                    "  if (M.count(3) != 0) M.erase(3);\n"
                    "}\n";
  FileRewrite FR = rewriteSource("t.cpp", Src, ApplyOptions());
  ASSERT_EQ(FR.Rewritten, 1u);
  EXPECT_EQ(FR.Rejected, 0u);
  const PlanEntry *E = entryFor(FR, "M");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->St, PlanEntry::Status::Rewritten);
  EXPECT_EQ(E->To, "std::unordered_map");
  EXPECT_NE(FR.Patched.find("std::unordered_map<int, int> M;"),
            std::string::npos);
  EXPECT_NE(FR.Patched.find("#include <unordered_map>\n"),
            std::string::npos);
  EXPECT_FALSE(FR.Diff.empty());
}

TEST(Apply, ChecksSequenceToSetUpgradeRewritingEverySite) {
  std::string Src =
      "#include <algorithm>\n"
      "#include <vector>\n"
      "std::vector<int> P;\n"
      "void f() {\n"
      "  if (std::find(P.begin(), P.end(), 4) == P.end()) P.push_back(4);\n"
      "  long N = std::count(P.begin(), P.end(), 4);\n"
      "  if (P.size() > 10) P.clear();\n"
      "}\n";
  FileRewrite FR = rewriteSource("t.cpp", Src, ApplyOptions());
  ASSERT_EQ(FR.Rewritten, 1u);
  EXPECT_NE(FR.Patched.find("std::unordered_set<int> P;"),
            std::string::npos);
  EXPECT_NE(FR.Patched.find("P.insert(4)"), std::string::npos);
  EXPECT_NE(FR.Patched.find("P.find(4)"), std::string::npos);
  EXPECT_NE(FR.Patched.find("P.count(4)"), std::string::npos);
  EXPECT_EQ(FR.Patched.find("push_back"), std::string::npos);
  EXPECT_EQ(FR.Patched.find("std::find"), std::string::npos);
  EXPECT_EQ(FR.Patched.find("std::count"), std::string::npos);
}

TEST(Apply, IteratedContainerIsKeptWithAReason) {
  std::string Src = "#include <vector>\n"
                    "std::vector<int> V;\n"
                    "long f() {\n"
                    "  long S = 0;\n"
                    "  for (int X : V) S += X;\n"
                    "  return S;\n"
                    "}\n";
  FileRewrite FR = rewriteSource("t.cpp", Src, ApplyOptions());
  EXPECT_EQ(FR.Rewritten, 0u);
  EXPECT_EQ(FR.Patched, FR.Original);
  const PlanEntry *E = entryFor(FR, "V");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->St, PlanEntry::Status::Kept);
  EXPECT_EQ(E->Reason,
            "no preferred target passes legality and interface mapping");
}

TEST(Apply, AliasDeclaredVariableIsKept) {
  std::string Src = "#include <map>\n"
                    "using Cache = std::map<int, int>;\n"
                    "Cache C;\n"
                    "void f() { C[1] = 2; }\n";
  FileRewrite FR = rewriteSource("t.cpp", Src, ApplyOptions());
  EXPECT_EQ(FR.Rewritten, 0u);
  const PlanEntry *E = entryFor(FR, "C");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Reason, "declared via a type alias (shared with other uses)");
}

TEST(Apply, SharedDeclarationMovesTogetherOrNotAtAll) {
  // A would upgrade, but it shares one declaration (one type byte-span)
  // with iterated B — so neither moves.
  std::string Src = "#include <vector>\n"
                    "std::vector<int> A, B;\n"
                    "void f() {\n"
                    "  A.push_back(1);\n"
                    "  for (int X : B) (void)X;\n"
                    "}\n";
  FileRewrite FR = rewriteSource("t.cpp", Src, ApplyOptions());
  EXPECT_EQ(FR.Rewritten, 0u);
  EXPECT_EQ(FR.Patched, FR.Original);
  const PlanEntry *E = entryFor(FR, "A");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Reason,
            "shares a declaration with a variable that keeps its type");
}

//===----------------------------------------------------------------------===//
// Rejection path: a refused patch is reported, never emitted
//===----------------------------------------------------------------------===//

TEST(Apply, HandBuiltRuleGapBlocksTheUpgradeConservatively) {
  std::string Src = "#include <vector>\n"
                    "std::vector<int> P;\n"
                    "void f() { P.push_back(4); }\n";
  ApplyOptions Opts;
  Opts.Rules.remove(Family::Sequence, Family::SetLike, Op::PushBack);
  FileRewrite FR = rewriteSource("t.cpp", Src, Opts);
  EXPECT_EQ(FR.Rewritten, 0u);
  EXPECT_EQ(FR.Patched, FR.Original);
  const PlanEntry *E = entryFor(FR, "P");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->St, PlanEntry::Status::Kept);
  EXPECT_EQ(E->Reason,
            "no preferred target passes legality and interface mapping");
  // The same source upgrades under the shipped table.
  EXPECT_EQ(rewriteSource("t.cpp", Src, ApplyOptions()).Rewritten, 1u);
}

TEST(Apply, InconsistentPlanIsRejectedWithReasonAndNeverEmitted) {
  // Two viable upgrades whose rewrite spans nest: the outer find idiom's
  // probe *is* the inner count idiom. The planner emits overlapping
  // edits, the patcher refuses them, and both variables come back
  // rejected — with the original bytes untouched.
  std::string Src =
      "#include <algorithm>\n"
      "#include <vector>\n"
      "std::vector<int> V;\n"
      "std::vector<int> W;\n"
      "void f() {\n"
      "  bool B = std::find(V.begin(), V.end(),\n"
      "                     (int)std::count(W.begin(), W.end(), 3)) !=\n"
      "           V.end();\n"
      "  (void)B;\n"
      "}\n";
  FileRewrite FR = rewriteSource("t.cpp", Src, ApplyOptions());
  EXPECT_EQ(FR.Rewritten, 0u);
  EXPECT_EQ(FR.Rejected, 2u);
  EXPECT_EQ(FR.Patched, FR.Original);
  EXPECT_TRUE(FR.Diff.empty());
  const PlanEntry *EV = entryFor(FR, "V");
  const PlanEntry *EW = entryFor(FR, "W");
  ASSERT_NE(EV, nullptr);
  ASSERT_NE(EW, nullptr);
  EXPECT_EQ(EV->St, PlanEntry::Status::Rejected);
  EXPECT_EQ(EW->St, PlanEntry::Status::Rejected);
  EXPECT_NE(EV->Reason.find("patch failed"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Idempotence and determinism
//===----------------------------------------------------------------------===//

TEST(Apply, ApplyOnItsOwnOutputIsANoOp) {
  std::string Src =
      "#include <algorithm>\n"
      "#include <vector>\n"
      "std::vector<int> P;\n"
      "void f() {\n"
      "  if (std::find(P.begin(), P.end(), 4) == P.end()) P.push_back(4);\n"
      "}\n";
  FileRewrite First = rewriteSource("t.cpp", Src, ApplyOptions());
  ASSERT_EQ(First.Rewritten, 1u);
  FileRewrite Second = rewriteSource("t.cpp", First.Patched, ApplyOptions());
  EXPECT_EQ(Second.Rewritten, 0u);
  EXPECT_EQ(Second.Rejected, 0u);
  EXPECT_EQ(Second.Patched, First.Patched);
  EXPECT_TRUE(Second.Diff.empty());
}

TEST(Apply, JsonReportIsByteIdenticalAcrossJobCounts) {
  std::vector<std::pair<std::string, std::string>> Sources;
  for (int I = 0; I != 6; ++I)
    Sources.emplace_back("f" + std::to_string(I) + ".cpp",
                         "#include <map>\n"
                         "std::map<int, int> M" + std::to_string(I) + ";\n"
                         "void f() { M" + std::to_string(I) + "[1] = 2; }\n");
  std::string Serial = renderApplyJson(rewriteSources(Sources,
                                                      ApplyOptions(), 1));
  std::string Parallel = renderApplyJson(rewriteSources(Sources,
                                                        ApplyOptions(), 4));
  EXPECT_EQ(Serial, Parallel);
  EXPECT_NE(Serial.find("\"summary\":{\"files\":6,\"rewritten\":6,"
                        "\"rejected\":0}"),
            std::string::npos);
}

TEST(Apply, PreferListParsesNamesAndNamesBadTokens) {
  std::vector<Candidate> Out;
  std::string Err;
  ASSERT_TRUE(parsePreferList("unordered_map, set", Out, Err)) << Err;
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0], Candidate::UnorderedMap);
  EXPECT_EQ(Out[1], Candidate::Set);
  EXPECT_FALSE(parsePreferList("unordered_map,bogus", Out, Err));
  EXPECT_NE(Err.find("bogus"), std::string::npos);
  EXPECT_FALSE(parsePreferList("", Out, Err));
}
