//===- tests/training_test.cpp - end-to-end training integration ----------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
// Integration tests over the complete two-phase pipeline at a reduced
// scale: generation -> racing -> profiling -> learning -> prediction.
//
//===----------------------------------------------------------------------===//

#include "core/Brainy.h"

#include <gtest/gtest.h>

using namespace brainy;

namespace {

TrainOptions smallOptions() {
  TrainOptions Opts;
  Opts.TargetPerDs = 10;
  Opts.MaxSeeds = 900;
  Opts.GenConfig.TotalInterfCalls = 250;
  Opts.GenConfig.MaxInitialSize = 800;
  Opts.Net.Epochs = 50;
  return Opts;
}

} // namespace

TEST(TrainingIntegrationTest, TrainingIsDeterministic) {
  TrainOptions Opts = smallOptions();
  Opts.TargetPerDs = 5;
  Opts.MaxSeeds = 300;
  MachineConfig MC = MachineConfig::core2();
  Brainy A = Brainy::train(Opts, MC);
  Brainy B = Brainy::train(Opts, MC);
  EXPECT_EQ(A.toString(), B.toString());
}

TEST(TrainingIntegrationTest, ModelsBeatChanceOnHeldOutApps) {
  TrainOptions Opts = smallOptions();
  MachineConfig MC = MachineConfig::core2();
  Brainy B = Brainy::train(Opts, MC);
  TrainingFramework FW(Opts, MC);

  // Validate the order-oblivious vector model: 6 candidates, chance ~17%.
  ModelKind MK = ModelKind::VectorOO;
  unsigned Correct = 0, Total = 0;
  uint64_t Seed = Opts.FirstSeed + Opts.MaxSeeds;
  while (Total < 40 && Seed < Opts.FirstSeed + Opts.MaxSeeds + 2500) {
    uint64_t S = Seed++;
    if (!FW.specMatchesModel(S, MK))
      continue;
    AppSpec Spec = AppSpec::fromSeed(S, Opts.GenConfig);
    RaceResult Race = oracleBest(Spec, modelOriginal(MK), MC);
    if (Race.Margin < Opts.WinnerMargin)
      continue;
    ProfiledOutcome Out = runAppProfiled(Spec, modelOriginal(MK), MC);
    Correct += B.model(MK).predict(Out.Features, true) == Race.Best;
    ++Total;
  }
  ASSERT_GE(Total, 30u);
  double Accuracy = static_cast<double>(Correct) / Total;
  // Even a tiny training run should be far above the ~1/6 chance level.
  EXPECT_GT(Accuracy, 0.40);
}

TEST(TrainingIntegrationTest, PredictionsAreLegalCandidates) {
  TrainOptions Opts = smallOptions();
  Opts.TargetPerDs = 6;
  Opts.MaxSeeds = 400;
  MachineConfig MC = MachineConfig::atom();
  Brainy B = Brainy::train(Opts, MC);
  for (uint64_t Seed = 5000; Seed != 5050; ++Seed) {
    AppSpec Spec = AppSpec::fromSeed(Seed, Opts.GenConfig);
    for (DsKind Original : {DsKind::Vector, DsKind::List, DsKind::Set,
                            DsKind::Map}) {
      ProfiledOutcome Out = runAppProfiled(Spec, Original, MC);
      DsKind Pick = B.recommend(Original, Out.Sw, Out.Features);
      std::vector<DsKind> Legal =
          replacementCandidates(Original, Out.Sw.orderOblivious());
      EXPECT_NE(std::find(Legal.begin(), Legal.end(), Pick), Legal.end())
          << dsKindName(Original) << " -> " << dsKindName(Pick);
    }
  }
}

TEST(TrainingIntegrationTest, TwoMachinesTrainDistinctModels) {
  TrainOptions Opts = smallOptions();
  Opts.TargetPerDs = 6;
  Opts.MaxSeeds = 400;
  Brainy C2 = Brainy::train(Opts, MachineConfig::core2());
  Brainy AT = Brainy::train(Opts, MachineConfig::atom());
  EXPECT_NE(C2.machineName(), AT.machineName());
  // The learned weights differ (the machines rank candidates differently).
  EXPECT_NE(C2.model(ModelKind::VectorOO).toString(),
            AT.model(ModelKind::VectorOO).toString());
}
