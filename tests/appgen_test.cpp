//===- tests/appgen_test.cpp - application generator tests ----------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "appgen/AppRunner.h"

#include <gtest/gtest.h>

using namespace brainy;

//===----------------------------------------------------------------------===//
// AppConfig (Table 2)
//===----------------------------------------------------------------------===//

TEST(AppConfigTest, SampleConfigParses) {
  AppConfig A = AppConfig::fromString(AppConfig::sampleConfigText());
  EXPECT_EQ(A.TotalInterfCalls, 1000u);
  EXPECT_EQ(A.MaxInsertVal, 65536);
  EXPECT_EQ(A.MaxIterCount, 256);
  ASSERT_EQ(A.DataElemSizes.size(), 6u);
  EXPECT_EQ(A.DataElemSizes.front(), 4);
}

TEST(AppConfigTest, MissingKeysKeepDefaults) {
  AppConfig Defaults;
  AppConfig A = AppConfig::fromString("TotalInterfCalls = 42\n");
  EXPECT_EQ(A.TotalInterfCalls, 42u);
  EXPECT_EQ(A.MaxInsertVal, Defaults.MaxInsertVal);
  EXPECT_EQ(A.DataElemSizes, Defaults.DataElemSizes);
}

//===----------------------------------------------------------------------===//
// AppSpec derivation
//===----------------------------------------------------------------------===//

TEST(AppSpecTest, DeterministicFromSeed) {
  AppConfig Cfg;
  AppSpec A = AppSpec::fromSeed(1234, Cfg);
  AppSpec B = AppSpec::fromSeed(1234, Cfg);
  EXPECT_EQ(A.ElemBytes, B.ElemBytes);
  EXPECT_EQ(A.OrderOblivious, B.OrderOblivious);
  EXPECT_EQ(A.InitialSize, B.InitialSize);
  EXPECT_EQ(A.OpWeights, B.OpWeights);
  EXPECT_DOUBLE_EQ(A.HitBias, B.HitBias);
  EXPECT_DOUBLE_EQ(A.FrontBias, B.FrontBias);
}

TEST(AppSpecTest, SeedsVaryBehaviour) {
  AppConfig Cfg;
  unsigned OOCount = 0;
  std::set<uint32_t> ElemSizes;
  for (uint64_t Seed = 0; Seed != 400; ++Seed) {
    AppSpec S = AppSpec::fromSeed(Seed, Cfg);
    OOCount += S.OrderOblivious;
    ElemSizes.insert(S.ElemBytes);
  }
  // About half order-oblivious (config default 0.5).
  EXPECT_GT(OOCount, 120u);
  EXPECT_LT(OOCount, 280u);
  // All configured element sizes appear.
  EXPECT_EQ(ElemSizes.size(), Cfg.DataElemSizes.size());
}

TEST(AppSpecTest, OrderObliviousAppsDropOrderSensitiveOps) {
  AppConfig Cfg;
  for (uint64_t Seed = 0; Seed != 300; ++Seed) {
    AppSpec S = AppSpec::fromSeed(Seed, Cfg);
    if (!S.OrderOblivious)
      continue;
    EXPECT_EQ(S.OpWeights[static_cast<unsigned>(AppOp::InsertAt)], 0.0);
    EXPECT_EQ(S.OpWeights[static_cast<unsigned>(AppOp::EraseAt)], 0.0);
    EXPECT_EQ(S.OpWeights[static_cast<unsigned>(AppOp::Iterate)], 0.0);
  }
}

TEST(AppSpecTest, WeightsNeverAllZero) {
  AppConfig Cfg;
  Cfg.OpDropProb = 0.95; // aggressive dropping
  for (uint64_t Seed = 0; Seed != 200; ++Seed) {
    AppSpec S = AppSpec::fromSeed(Seed, Cfg);
    double Total = 0;
    for (double W : S.OpWeights)
      Total += W;
    EXPECT_GT(Total, 0.0);
  }
}

TEST(AppSpecTest, FrontWindowModeAppears) {
  AppConfig Cfg;
  unsigned WindowApps = 0;
  for (uint64_t Seed = 0; Seed != 400; ++Seed) {
    AppSpec S = AppSpec::fromSeed(Seed, Cfg);
    if (S.HitWindow) {
      ++WindowApps;
      EXPECT_GE(S.HitWindow, 1u);
      EXPECT_LE(S.HitWindow, 4u);
    }
  }
  // Roughly a quarter of apps use FIFO-style front-window hits.
  EXPECT_GT(WindowApps, 60u);
  EXPECT_LT(WindowApps, 140u);
}

TEST(AppSpecTest, FocusedAppsAreCommon) {
  AppConfig Cfg;
  unsigned Focused = 0;
  for (uint64_t Seed = 0; Seed != 400; ++Seed) {
    AppSpec S = AppSpec::fromSeed(Seed, Cfg);
    unsigned NonZero = 0;
    for (double W : S.OpWeights)
      NonZero += W > 0;
    Focused += NonZero <= 2;
  }
  // FocusProb(0.2) plus drop-heavy draws: a solid slice of the space is
  // one-or-two-op dominated, like real applications.
  EXPECT_GT(Focused, 80u);
}

TEST(AppSpecTest, OpNames) {
  EXPECT_STREQ(appOpName(AppOp::Insert), "insert");
  EXPECT_STREQ(appOpName(AppOp::PushFront), "push_front");
  EXPECT_STREQ(appOpName(AppOp::Iterate), "iterate");
}

//===----------------------------------------------------------------------===//
// AppRunner
//===----------------------------------------------------------------------===//

TEST(AppRunnerTest, DeterministicCycles) {
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 300;
  AppSpec Spec = AppSpec::fromSeed(77, Cfg);
  MachineConfig MC = MachineConfig::core2();
  RunOutcome A = runApp(Spec, DsKind::Vector, MC);
  RunOutcome B = runApp(Spec, DsKind::Vector, MC);
  EXPECT_DOUBLE_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.FinalSize, B.FinalSize);
  EXPECT_EQ(A.Hw.Instructions, B.Hw.Instructions);
}

namespace {

/// Records the op tape for cross-kind comparison.
class TapeRecorder final : public OpObserver {
public:
  void onOp(AppOp Op, uint64_t SizeBefore, uint64_t Arg) override {
    (void)SizeBefore;
    Tape.push_back({Op, Arg});
  }
  std::vector<std::pair<AppOp, uint64_t>> Tape;
};

} // namespace

TEST(AppRunnerTest, SameOpTapeAcrossAllKinds) {
  // The paper's requirement: the generated application's behaviour is
  // exactly the same; only the data structure differs.
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 400;
  AppSpec Spec = AppSpec::fromSeed(31, Cfg);
  MachineConfig MC = MachineConfig::core2();

  TapeRecorder Reference;
  runApp(Spec, DsKind::Vector, MC, &Reference);
  for (DsKind Kind : {DsKind::List, DsKind::Deque, DsKind::Set,
                      DsKind::AvlSet, DsKind::HashSet}) {
    TapeRecorder Tape;
    runApp(Spec, Kind, MC, &Tape);
    ASSERT_EQ(Tape.Tape.size(), Reference.Tape.size()) << dsKindName(Kind);
    for (size_t I = 0; I != Tape.Tape.size(); ++I) {
      ASSERT_EQ(Tape.Tape[I].first, Reference.Tape[I].first);
      ASSERT_EQ(Tape.Tape[I].second, Reference.Tape[I].second);
    }
  }
}

TEST(AppRunnerTest, KindsProduceDifferentCycles) {
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 500;
  AppSpec Spec = AppSpec::fromSeed(11, Cfg);
  MachineConfig MC = MachineConfig::core2();
  double V = runApp(Spec, DsKind::Vector, MC).Cycles;
  double H = runApp(Spec, DsKind::HashSet, MC).Cycles;
  EXPECT_NE(V, H);
  EXPECT_GT(V, 0);
  EXPECT_GT(H, 0);
}

TEST(AppRunnerTest, MachinesProduceDifferentCycles) {
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 300;
  AppSpec Spec = AppSpec::fromSeed(13, Cfg);
  double C2 = runApp(Spec, DsKind::List, MachineConfig::core2()).Cycles;
  double AT = runApp(Spec, DsKind::List, MachineConfig::atom()).Cycles;
  EXPECT_NE(C2, AT);
}

TEST(AppRunnerTest, ProfiledRunMatchesSpecShape) {
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 600;
  MachineConfig MC = MachineConfig::core2();
  // Find an order-oblivious spec and check its profile looks OO.
  for (uint64_t Seed = 0;; ++Seed) {
    ASSERT_LT(Seed, 200u);
    AppSpec Spec = AppSpec::fromSeed(Seed, Cfg);
    if (!Spec.OrderOblivious)
      continue;
    ProfiledOutcome Out = runAppProfiled(Spec, DsKind::Vector, MC);
    EXPECT_TRUE(Out.Sw.orderOblivious());
    // Prepopulation inserts are instrumented too: the profile sees the
    // dispatch loop plus InitialSize insertions.
    EXPECT_EQ(Out.Sw.totalCalls(), Cfg.TotalInterfCalls + Spec.InitialSize);
    EXPECT_DOUBLE_EQ(Out.Features[FeatureId::ElemBytesF],
                     static_cast<double>(Spec.ElemBytes));
    break;
  }
}

TEST(AppRunnerTest, ProfiledCyclesMatchPlainRun) {
  // Profiling wrappers must observe, not perturb: same simulated cycles.
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 300;
  AppSpec Spec = AppSpec::fromSeed(55, Cfg);
  MachineConfig MC = MachineConfig::atom();
  RunOutcome Plain = runApp(Spec, DsKind::Set, MC);
  ProfiledOutcome Profiled = runAppProfiled(Spec, DsKind::Set, MC);
  EXPECT_DOUBLE_EQ(Plain.Cycles, Profiled.Run.Cycles);
}

TEST(AppRunnerTest, InitialSizePrepopulates) {
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 10;
  for (uint64_t Seed = 0; Seed != 300; ++Seed) {
    AppSpec Spec = AppSpec::fromSeed(Seed, Cfg);
    if (Spec.InitialSize < 100)
      continue;
    RunOutcome Out = runApp(Spec, DsKind::List, MachineConfig::core2());
    // A list keeps every inserted element; at most 10 dispatch erases.
    EXPECT_GE(Out.FinalSize + 10, Spec.InitialSize);
    return;
  }
  FAIL() << "no spec with a large initial population found";
}
