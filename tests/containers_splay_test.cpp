//===- tests/containers_splay_test.cpp - SplayTree tests ------------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "containers/RbTree.h"
#include "containers/SplayTree.h"
#include "machine/MachineModel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace brainy;
using namespace brainy::ds;

TEST(SplayTreeTest, InsertFindErase) {
  SplayTree T;
  EXPECT_TRUE(T.insert(5).Found);
  EXPECT_TRUE(T.insert(3).Found);
  EXPECT_TRUE(T.insert(8).Found);
  EXPECT_FALSE(T.insert(5).Found);
  EXPECT_EQ(T.size(), 3u);
  EXPECT_TRUE(T.find(3).Found);
  EXPECT_FALSE(T.find(4).Found);
  EXPECT_TRUE(T.erase(3).Found);
  EXPECT_FALSE(T.erase(3).Found);
  EXPECT_TRUE(T.checkInvariants());
}

TEST(SplayTreeTest, AccessSplaysToRoot) {
  SplayTree T;
  for (Key K = 0; K != 100; ++K)
    T.insert(K);
  T.find(17);
  EXPECT_EQ(T.rootKey(), 17);
  T.find(93);
  EXPECT_EQ(T.rootKey(), 93);
  // A missed search splays the closest node on the path.
  T.find(1000);
  EXPECT_EQ(T.rootKey(), 99);
}

TEST(SplayTreeTest, RepeatedAccessBecomesCheap) {
  SplayTree T;
  Rng R(5);
  for (int I = 0; I != 2000; ++I)
    T.insert(static_cast<Key>(R.nextBelow(1u << 28)));
  Key Hot = T.at(1000);
  T.find(Hot);
  // Once splayed to the root, the next lookup touches exactly one node.
  OpResult Again = T.find(Hot);
  EXPECT_TRUE(Again.Found);
  EXPECT_EQ(Again.Cost, 1u);
}

TEST(SplayTreeTest, SortedIterationAndAt) {
  SplayTree T;
  for (Key K : {9, 1, 8, 2, 7, 3})
    T.insert(K);
  Key Expected[] = {1, 2, 3, 7, 8, 9};
  for (unsigned I = 0; I != 6; ++I)
    EXPECT_EQ(T.at(I), Expected[I]);
  EXPECT_EQ(T.iterate(6).Cost, 6u);
}

TEST(SplayTreeTest, EraseAtAndClear) {
  SplayTree T(32);
  for (Key K : {10, 20, 30, 40})
    T.insert(K);
  EXPECT_TRUE(T.eraseAt(1).Found);
  EXPECT_FALSE(T.find(20).Found);
  EXPECT_TRUE(T.checkInvariants());
  T.clear();
  EXPECT_EQ(T.size(), 0u);
  EXPECT_EQ(T.simLiveBytes(), 0u);
}

TEST(SplayTreeTest, RandomChurnAgainstReference) {
  SplayTree T;
  std::set<Key> Ref;
  Rng R(123);
  for (int I = 0; I != 6000; ++I) {
    Key K = static_cast<Key>(R.nextBelow(400));
    switch (R.nextBelow(3)) {
    case 0:
      ASSERT_EQ(T.insert(K).Found, Ref.insert(K).second);
      break;
    case 1:
      ASSERT_EQ(T.erase(K).Found, Ref.erase(K) == 1);
      break;
    default:
      ASSERT_EQ(T.find(K).Found, Ref.count(K) == 1);
      break;
    }
    ASSERT_EQ(T.size(), Ref.size());
    if (I % 1000 == 0)
      ASSERT_TRUE(T.checkInvariants());
  }
  ASSERT_TRUE(T.checkInvariants());
  uint64_t I = 0;
  for (Key K : Ref)
    ASSERT_EQ(T.at(I++), K);
}

TEST(SplayTreeTest, SkewNarrowsTheGapToRedBlack) {
  // The paper's Section 1 motivation claims splay trees beat red-black
  // trees on real-world (temporally skewed) data. In this machine model
  // the balanced tree keeps an edge (splay rotations are charged like
  // ordinary touches), but the self-adjusting property must show:
  // skewed access improves splay far more than it improves red-black,
  // monotonically narrowing the gap. See bench/ext_splay_tree and
  // EXPERIMENTS.md for the full comparison.
  auto Measure = [](auto &Tree, double HotRate, MachineModel &Model) {
    Rng R(9);
    std::vector<Key> Keys;
    for (int I = 0; I != 4000; ++I) {
      Key K = static_cast<Key>(R.nextBelow(1u << 28));
      Keys.push_back(K);
      Tree.insert(K);
    }
    Model.reset();
    for (int I = 0; I != 20000; ++I) {
      Key K = R.nextBool(HotRate) ? Keys[R.nextBelow(16)]
                                  : Keys[R.nextBelow(Keys.size())];
      Tree.find(K);
    }
    return Model.cycles();
  };
  MachineConfig Machine = MachineConfig::core2();
  double Ratio[2];
  int Idx = 0;
  for (double Hot : {0.0, 0.99}) {
    MachineModel SplayModel(Machine), RbModel(Machine);
    SplayTree Splay(8, &SplayModel);
    RbTree RB(8, &RbModel);
    double SplayCycles = Measure(Splay, Hot, SplayModel);
    double RbCycles = Measure(RB, Hot, RbModel);
    Ratio[Idx++] = SplayCycles / RbCycles;
  }
  // Under skew the splay/rb ratio must shrink substantially.
  EXPECT_LT(Ratio[1], Ratio[0] * 0.75);
}

TEST(SplayTreeTest, CursorSurvivesErase) {
  SplayTree T;
  for (Key K : {1, 2, 3, 4, 5})
    T.insert(K);
  T.iterate(2); // cursor now points at 3
  T.erase(3);
  OpResult R = T.iterate(1);
  EXPECT_TRUE(R.Found);
  EXPECT_TRUE(T.checkInvariants());
}

TEST(SplayTreeTest, LeanNodeFootprint) {
  SplayTree Splay(8);
  RbTree RB(8);
  for (Key K = 0; K != 64; ++K) {
    Splay.insert(K);
    RB.insert(K);
  }
  EXPECT_LT(Splay.simLiveBytes(), RB.simLiveBytes());
}
