//===- tests/survey_test.cpp - container-usage survey tests ---------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "survey/Survey.h"

#include <gtest/gtest.h>

using namespace brainy;

TEST(SurveyTest, CountsTemplatedAndQualifiedUses) {
  auto Counts = countContainerRefs("std::vector<int> V;\n"
                                   "vector<double> W;\n"
                                   "std::map<int, int> M;\n");
  EXPECT_EQ(Counts["vector"], 2u);
  EXPECT_EQ(Counts["map"], 1u);
  EXPECT_EQ(Counts["set"], 0u);
}

TEST(SurveyTest, IgnoresCommentsAndStrings) {
  auto Counts = countContainerRefs(
      "// std::vector<int> commented;\n"
      "/* std::set<int> blocky; */\n"
      "const char *S = \"std::map<int,int>\";\n"
      "std::list<int> Real;\n");
  EXPECT_EQ(Counts["vector"], 0u);
  EXPECT_EQ(Counts["set"], 0u);
  EXPECT_EQ(Counts["map"], 0u);
  EXPECT_EQ(Counts["list"], 1u);
}

TEST(SurveyTest, WordBoundariesPreventSubstringHits) {
  auto Counts = countContainerRefs("std::multimap<int,int> MM;\n"
                                   "hash_map<int,int> HM;\n"
                                   "my_vector<int> NotStd;\n"
                                   "int setting = 0; int offset(1);\n");
  EXPECT_EQ(Counts["map"], 0u); // inside multimap / hash_map only
  EXPECT_EQ(Counts["multimap"], 1u);
  EXPECT_EQ(Counts["hash_map"], 1u);
  EXPECT_EQ(Counts["vector"], 0u); // my_vector is not vector
  EXPECT_EQ(Counts["set"], 0u);    // "setting"/"offset" are identifiers
}

TEST(SurveyTest, BareWordWithoutTemplateOrQualifierDoesNotCount) {
  auto Counts = countContainerRefs("int set = 1; set = 2;\n");
  EXPECT_EQ(Counts["set"], 0u);
}

TEST(SurveyTest, MergeAddsCounts) {
  std::map<std::string, uint64_t> A = {{"vector", 2}};
  mergeCounts(A, {{"vector", 3}, {"list", 1}});
  EXPECT_EQ(A["vector"], 5u);
  EXPECT_EQ(A["list"], 1u);
}

TEST(SurveyTest, CorpusGenerationIsDeterministic) {
  EXPECT_EQ(generateCorpusFile(42), generateCorpusFile(42));
  EXPECT_NE(generateCorpusFile(42), generateCorpusFile(43));
}

TEST(SurveyTest, CorpusReproducesFigure2Ordering) {
  // Figure 2's headline: vector, list, set, and map dominate, with vector
  // far ahead.
  auto Totals = surveyCorpus(300);
  EXPECT_GT(Totals["vector"], Totals["list"]);
  EXPECT_GT(Totals["vector"], 2 * Totals["set"]);
  EXPECT_GT(Totals["list"], Totals["deque"]);
  EXPECT_GT(Totals["map"], Totals["multimap"]);
  EXPECT_GT(Totals["set"], Totals["multiset"]);
  EXPECT_GT(Totals["vector"], 100u);
}

TEST(SurveyTest, SurveyedNamesCoverPaperTargets) {
  auto Names = surveyedContainerNames();
  for (const char *Needed :
       {"vector", "list", "set", "map", "unordered_map", "unordered_set",
        "unordered_multimap", "unordered_multiset"})
    EXPECT_NE(std::find(Names.begin(), Names.end(), Needed), Names.end());
}

TEST(SurveyTest, CountsUnorderedSpellings) {
  auto Counts = countContainerRefs(
      "std::unordered_map<int, int> A;\n"
      "std::unordered_multimap<int, int> B;\n"
      "unordered_multiset<int> C;\n"
      "std::unordered_set<int> D;\n");
  EXPECT_EQ(Counts["unordered_map"], 1u);
  EXPECT_EQ(Counts["unordered_multimap"], 1u);
  EXPECT_EQ(Counts["unordered_multiset"], 1u);
  EXPECT_EQ(Counts["unordered_set"], 1u);
  // No substring bleed into map/set/multimap.
  EXPECT_EQ(Counts["map"], 0u);
  EXPECT_EQ(Counts["set"], 0u);
  EXPECT_EQ(Counts["multimap"], 0u);
}

TEST(SurveyTest, AliasUsesAttributeToUnderlyingContainer) {
  auto Counts = countContainerRefs("using Vec = std::vector<int>;\n"
                                   "typedef std::map<int, int> Index;\n"
                                   "Vec A;\n"
                                   "Vec B;\n"
                                   "Index Lookup;\n");
  // One direct reference each at the alias definitions, plus the uses:
  // two Vec's for vector, one Index for map.
  EXPECT_EQ(Counts["vector"], 3u);
  EXPECT_EQ(Counts["map"], 2u);
}

TEST(SurveyTest, AliasDefinitionSitesDoNotSelfCount) {
  auto Counts = countContainerRefs("using Vec = std::vector<int>;\n"
                                   "typedef std::map<int, int> Index;\n");
  EXPECT_EQ(Counts["vector"], 1u); // the std::vector reference itself
  EXPECT_EQ(Counts["map"], 1u);
}

TEST(SurveyTest, AliasRecognitionKeepsCorpusFiguresStable) {
  // The synthetic corpus contains no aliases; the Figure 2 totals must be
  // exactly what the pre-alias scanner produced.
  auto Totals = surveyCorpus(50);
  auto Again = surveyCorpus(50);
  EXPECT_EQ(Totals, Again);
  for (const char *Unordered :
       {"unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"})
    EXPECT_EQ(Totals[Unordered], 0u);
}
