//===- tests/training_parallel_test.cpp - Jobs=N determinism --------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
// The parallel training pipeline's hard contract: any Jobs value produces
// byte-identical results to the serial run — Phase I pairs and counters,
// Phase II examples, trained models, GA feature selection. Plus unit tests
// for the ThreadPool itself.
//
//===----------------------------------------------------------------------===//

#include "core/Brainy.h"
#include "ml/GaSelect.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

using namespace brainy;

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool Pool(3);
  std::vector<std::atomic<int>> Hits(257);
  Pool.parallelFor(0, Hits.size(),
                   [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, ParallelChunksPartitionsRange) {
  ThreadPool Pool(2);
  std::vector<std::atomic<int>> Hits(100);
  Pool.parallelChunks(10, 90, 7, [&](size_t B, size_t E) {
    ASSERT_LT(B, E);
    ASSERT_LE(E - B, 7u);
    for (size_t I = B; I != E; ++I)
      Hits[I].fetch_add(1);
  });
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), I >= 10 && I < 90 ? 1 : 0) << "index " << I;
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller) {
  ThreadPool Pool(3);
  EXPECT_THROW(Pool.parallelFor(0, 64,
                                [](size_t I) {
                                  if (I == 13)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives a throwing job and keeps working.
  std::atomic<int> Count{0};
  Pool.parallelFor(0, 32, [&](size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 32);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != 64; ++I)
      Pool.submit([&Ran] { Ran.fetch_add(1); });
  }
  EXPECT_EQ(Ran.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool Pool(2);
  std::atomic<int> Inner{0};
  Pool.parallelFor(0, 8, [&](size_t) {
    // Re-entrant use from a worker (or the participating caller) must not
    // deadlock; it runs the nested range to completion.
    Pool.parallelFor(0, 4, [&](size_t) { Inner.fetch_add(1); });
  });
  EXPECT_EQ(Inner.load(), 8 * 4);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsSerially) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.workers(), 0u);
  int Sum = 0; // no atomics needed: everything runs on this thread
  Pool.parallelFor(0, 10, [&](size_t I) { Sum += static_cast<int>(I); });
  EXPECT_EQ(Sum, 45);
}

//===----------------------------------------------------------------------===//
// Parallel training determinism
//===----------------------------------------------------------------------===//

namespace {

TrainOptions parOptions(unsigned Jobs) {
  TrainOptions Opts;
  Opts.TargetPerDs = 6;
  Opts.MaxSeeds = 400;
  Opts.GenConfig.TotalInterfCalls = 200;
  Opts.GenConfig.MaxInitialSize = 500;
  Opts.Net.Epochs = 25;
  Opts.Jobs = Jobs;
  return Opts;
}

void expectSameResult(const PhaseOneResult &Serial,
                      const PhaseOneResult &Parallel) {
  EXPECT_EQ(Serial.SeedsScanned, Parallel.SeedsScanned);
  EXPECT_EQ(Serial.MarginRejects, Parallel.MarginRejects);
  ASSERT_EQ(Serial.SeedDsPairs.size(), Parallel.SeedDsPairs.size());
  for (size_t I = 0; I != Serial.SeedDsPairs.size(); ++I) {
    EXPECT_EQ(Serial.SeedDsPairs[I].Seed, Parallel.SeedDsPairs[I].Seed);
    EXPECT_EQ(Serial.SeedDsPairs[I].BestDs, Parallel.SeedDsPairs[I].BestDs);
  }
}

} // namespace

TEST(TrainingParallelTest, PhaseOneIdenticalAcrossJobs) {
  MachineConfig MC = MachineConfig::core2();
  TrainingFramework Serial(parOptions(1), MC);
  TrainingFramework Parallel(parOptions(4), MC);
  EXPECT_EQ(Serial.jobs(), 1u);
  EXPECT_EQ(Parallel.jobs(), 4u);
  for (ModelKind MK : {ModelKind::VectorOO, ModelKind::Set})
    expectSameResult(Serial.phaseOne(MK), Parallel.phaseOne(MK));
}

TEST(TrainingParallelTest, PhaseOneAllIdenticalAcrossJobs) {
  MachineConfig MC = MachineConfig::core2();
  TrainingFramework Serial(parOptions(1), MC);
  TrainingFramework Parallel(parOptions(4), MC);
  auto SerialAll = Serial.phaseOneAll();
  auto ParallelAll = Parallel.phaseOneAll();
  for (unsigned M = 0; M != NumModelKinds; ++M)
    expectSameResult(SerialAll[M], ParallelAll[M]);
}

TEST(TrainingParallelTest, PhaseTwoIdenticalAcrossJobs) {
  MachineConfig MC = MachineConfig::atom();
  TrainingFramework Serial(parOptions(1), MC);
  TrainingFramework Parallel(parOptions(3), MC);
  ModelKind MK = ModelKind::Vector;
  PhaseOneResult P1 = Serial.phaseOne(MK);
  std::vector<TrainExample> A = Serial.phaseTwo(MK, P1);
  std::vector<TrainExample> B = Parallel.phaseTwo(MK, P1);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Seed, B[I].Seed);
    EXPECT_EQ(A[I].BestDs, B[I].BestDs);
    EXPECT_EQ(A[I].Features.Values, B[I].Features.Values);
  }
}

TEST(TrainingParallelTest, MeasurementCachePersistsAcrossCalls) {
  MachineConfig MC = MachineConfig::core2();
  TrainingFramework FW(parOptions(4), MC);
  auto All = FW.phaseOneAll();
  size_t CachedSeeds = FW.measurements().seeds();
  EXPECT_GT(CachedSeeds, 0u);
  // A later per-family phaseOne revisits the same seed range: identical
  // pairs, answered from the warm cache.
  PhaseOneResult Single = FW.phaseOne(ModelKind::Map);
  ASSERT_EQ(Single.SeedDsPairs.size(),
            All[static_cast<unsigned>(ModelKind::Map)].SeedDsPairs.size());
  for (size_t I = 0; I != Single.SeedDsPairs.size(); ++I)
    EXPECT_EQ(Single.SeedDsPairs[I].Seed,
              All[static_cast<unsigned>(ModelKind::Map)].SeedDsPairs[I].Seed);
}

TEST(TrainingParallelTest, TrainedBundleIdenticalAcrossJobs) {
  TrainOptions SerialOpts = parOptions(1);
  TrainOptions ParallelOpts = parOptions(4);
  SerialOpts.TargetPerDs = ParallelOpts.TargetPerDs = 5;
  SerialOpts.MaxSeeds = ParallelOpts.MaxSeeds = 300;
  MachineConfig MC = MachineConfig::core2();
  Brainy A = Brainy::train(SerialOpts, MC);
  Brainy B = Brainy::train(ParallelOpts, MC);
  // Whole-bundle text equality covers Phase II examples, normalisation
  // stats, and every trained weight — and therefore every prediction.
  EXPECT_EQ(A.toString(), B.toString());
}

TEST(TrainingParallelTest, GaSelectionIdenticalAcrossJobs) {
  // Small deterministic two-class dataset: class = whether feature 2
  // dominates feature 5; other features are seeded noise.
  Dataset D;
  uint64_t State = 0x9e3779b97f4a7c15ULL;
  auto Next = [&State] {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return static_cast<double>(State % 1000) / 1000.0;
  };
  for (unsigned I = 0; I != 60; ++I) {
    std::vector<double> Row(8);
    for (double &V : Row)
      V = Next();
    D.add(Row, Row[2] > Row[5] ? 1u : 0u);
  }
  GaConfig Serial;
  Serial.Generations = 3;
  Serial.Jobs = 1;
  GaConfig Parallel = Serial;
  Parallel.Jobs = 4;
  GaResult A = selectFeatures(D, Serial);
  GaResult B = selectFeatures(D, Parallel);
  EXPECT_EQ(A.Weights, B.Weights);
  EXPECT_EQ(A.Ranked, B.Ranked);
  EXPECT_DOUBLE_EQ(A.Fitness, B.Fitness);
}
