//===- tests/invariants_test.cpp - Crc32 vectors + fault determinism ------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
// Two pillars the robustness layer (DESIGN.md §8) stands on, pinned by
// external references:
//
//  * support/Crc32 must match the published reflected CRC-32 (IEEE 802.3,
//    polynomial 0xEDB88320) — the bundle checksum is only diagnosable by
//    external tools if the algorithm is exactly the standard one.
//  * FaultInjector probe decisions must be a pure function of
//    (site seed, key, salt): same decision for every call order, thread
//    count, and repetition. This is what makes a fault run bit-identical
//    to the matching ExcludeSeeds run at any job count.
//
//===----------------------------------------------------------------------===//

#include "support/Crc32.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace brainy;

//===----------------------------------------------------------------------===//
// Crc32 against published test vectors
//===----------------------------------------------------------------------===//

TEST(Crc32Vectors, PublishedReferenceValues) {
  // The standard CRC-32 check value ("123456789" -> 0xCBF43926) plus the
  // classic string vectors shared by zlib/PNG implementations.
  EXPECT_EQ(crc32(std::string()), 0x00000000u);
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(std::string("abc")), 0x352441C2u);
  EXPECT_EQ(crc32(std::string("message digest")), 0x20159D7Fu);
  EXPECT_EQ(crc32(std::string("abcdefghijklmnopqrstuvwxyz")), 0x4C2750BDu);
  EXPECT_EQ(crc32(std::string(
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
                "0123456789")),
            0x1FC2E6D2u);
}

TEST(Crc32Vectors, AllZerosAndAllOnes) {
  // 32 zero bytes and 32 0xFF bytes, cross-checked against zlib's crc32().
  std::string Zeros(32, '\0');
  std::string Ones(32, '\xff');
  EXPECT_EQ(crc32(Zeros), 0x190A55ADu);
  EXPECT_EQ(crc32(Ones), 0xFF6CAB0Bu);
}

TEST(Crc32Vectors, SeedChainsIncrementalUpdates) {
  // Feeding a buffer in pieces, seeding each call with the previous
  // result, must equal the one-shot checksum (the zlib update contract
  // Brainy's bundle writer relies on).
  std::string Text = "The quick brown fox jumps over the lazy dog";
  uint32_t OneShot = crc32(Text);
  for (size_t Split = 0; Split <= Text.size(); ++Split) {
    uint32_t Partial = crc32(Text.substr(0, Split));
    EXPECT_EQ(crc32(Text.substr(Split), Partial), OneShot)
        << "split at " << Split;
  }
}

TEST(Crc32Vectors, RawPointerAndStringOverloadsAgree) {
  std::string Text = "brainy-bundle v2";
  EXPECT_EQ(crc32(Text), crc32(Text.data(), Text.size()));
}

//===----------------------------------------------------------------------===//
// FaultInjector probe determinism
//===----------------------------------------------------------------------===//

namespace {

/// Decision table for keys [0, NumKeys) x salts [0, NumSalts).
std::vector<char> probeAll(FaultInjector &Injector, uint64_t NumKeys,
                           uint64_t NumSalts) {
  std::vector<char> Out(NumKeys * NumSalts);
  for (uint64_t Key = 0; Key != NumKeys; ++Key)
    for (uint64_t Salt = 0; Salt != NumSalts; ++Salt)
      Out[Key * NumSalts + Salt] =
          Injector.shouldFail(FaultSite::Eval, Key, Salt) ? 1 : 0;
  return Out;
}

} // namespace

TEST(FaultInjectorDeterminism, SameTripleSameDecisionAcrossReconfigure) {
  FaultInjector Injector;
  ASSERT_FALSE(Injector.configure("eval:0.3:42"));
  std::vector<char> First = probeAll(Injector, 64, 4);
  uint64_t FirstCount = Injector.injectedCount(FaultSite::Eval);

  // Re-arm from scratch: the decision table is a pure function of the
  // spec, not of injector history.
  ASSERT_FALSE(Injector.configure("eval:0.3:42"));
  EXPECT_EQ(probeAll(Injector, 64, 4), First);
  EXPECT_EQ(Injector.injectedCount(FaultSite::Eval), FirstCount);

  // Roughly the configured rate actually fires (sanity that the table is
  // not degenerate all-pass / all-fail).
  EXPECT_GT(FirstCount, 0u);
  EXPECT_LT(FirstCount, 64u * 4u);
}

TEST(FaultInjectorDeterminism, ProbeOrderDoesNotChangeDecisions) {
  FaultInjector Injector;
  ASSERT_FALSE(Injector.configure("eval:0.5:7"));
  std::vector<char> Forward = probeAll(Injector, 128, 2);

  ASSERT_FALSE(Injector.configure("eval:0.5:7"));
  std::vector<char> Reversed(Forward.size());
  for (uint64_t Key = 128; Key-- != 0;)
    for (uint64_t Salt = 2; Salt-- != 0;)
      Reversed[Key * 2 + Salt] =
          Injector.shouldFail(FaultSite::Eval, Key, Salt) ? 1 : 0;
  EXPECT_EQ(Reversed, Forward);
}

TEST(FaultInjectorDeterminism, SameDecisionsAtEveryJobCount) {
  // The training-pipeline shape: keys partitioned over worker threads.
  // Every job count must produce the identical decision table, and hence
  // the identical set of surviving seeds.
  constexpr uint64_t NumKeys = 256;
  constexpr uint64_t NumSalts = 3;

  FaultInjector Reference;
  ASSERT_FALSE(Reference.configure("eval:0.25:1234"));
  std::vector<char> Serial = probeAll(Reference, NumKeys, NumSalts);

  for (unsigned Jobs : {2u, 4u, 8u}) {
    FaultInjector Injector;
    ASSERT_FALSE(Injector.configure("eval:0.25:1234"));
    std::vector<char> Parallel(NumKeys * NumSalts);
    ThreadPool Pool(Jobs - 1);
    Pool.parallelChunks(0, NumKeys, NumKeys / Jobs,
                        [&](size_t Begin, size_t End) {
                          for (size_t Key = Begin; Key != End; ++Key)
                            for (uint64_t Salt = 0; Salt != NumSalts; ++Salt)
                              Parallel[Key * NumSalts + Salt] =
                                  Injector.shouldFail(FaultSite::Eval, Key,
                                                      Salt)
                                      ? 1
                                      : 0;
                        });
    EXPECT_EQ(Parallel, Serial) << "jobs=" << Jobs;
    EXPECT_EQ(Injector.injectedCount(FaultSite::Eval),
              Reference.injectedCount(FaultSite::Eval))
        << "jobs=" << Jobs;
  }
}

TEST(FaultInjectorDeterminism, SitesAreIndependentStreams) {
  FaultInjector Injector;
  ASSERT_FALSE(Injector.configure("eval:0.5:9,io:0.5:9"));
  // Same rate and seed on two sites: decisions may coincide per-key only
  // by chance; the streams must not be systematically identical when the
  // site seeds differ.
  ASSERT_FALSE(Injector.configure("eval:0.5:9,io:0.5:10"));
  unsigned Differences = 0;
  for (uint64_t Key = 0; Key != 256; ++Key) {
    bool E = Injector.shouldFail(FaultSite::Eval, Key);
    bool I = Injector.shouldFail(FaultSite::FileIo, Key);
    Differences += E != I;
  }
  EXPECT_GT(Differences, 0u);
}

TEST(FaultInjectorDeterminism, ZeroRateNeverFiresFullRateAlwaysFires) {
  FaultInjector Injector;
  ASSERT_FALSE(Injector.configure("eval:0:5"));
  for (uint64_t Key = 0; Key != 64; ++Key)
    EXPECT_FALSE(Injector.shouldFail(FaultSite::Eval, Key));
  ASSERT_FALSE(Injector.configure("eval:1:5"));
  for (uint64_t Key = 0; Key != 64; ++Key)
    EXPECT_TRUE(Injector.shouldFail(FaultSite::Eval, Key));
}
