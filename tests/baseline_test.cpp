//===- tests/baseline_test.cpp - Perflint baseline tests ------------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "baseline/Perflint.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace brainy;

TEST(PerflintCostTest, PaperExampleCosts) {
  // Section 6.2: "for the cost of a find operation among N data elements,
  // vector leverages average case for linear search, i.e., 3/4N, while set
  // uses log N for binary search".
  EXPECT_DOUBLE_EQ(
      perflintAsymptoticCost(DsKind::Vector, AppOp::Find, 1000, 0), 750.0);
  EXPECT_NEAR(perflintAsymptoticCost(DsKind::Set, AppOp::Find, 1024, 0),
              10.0, 1e-9);
}

TEST(PerflintCostTest, CostsScaleWithN) {
  for (AppOp Op : {AppOp::Find, AppOp::Erase, AppOp::InsertAt}) {
    double Small = perflintAsymptoticCost(DsKind::Vector, Op, 10, 0);
    double Large = perflintAsymptoticCost(DsKind::Vector, Op, 10000, 0);
    EXPECT_GT(Large, Small) << appOpName(Op);
  }
  // Hash costs are N-independent for keyed ops.
  EXPECT_DOUBLE_EQ(
      perflintAsymptoticCost(DsKind::HashSet, AppOp::Find, 10, 0),
      perflintAsymptoticCost(DsKind::HashSet, AppOp::Find, 100000, 0));
}

TEST(PerflintCostTest, IterateScalesWithSteps) {
  double One = perflintAsymptoticCost(DsKind::List, AppOp::Iterate, 50, 1);
  double Many =
      perflintAsymptoticCost(DsKind::List, AppOp::Iterate, 50, 100);
  EXPECT_NEAR(Many, One * 100, 1e-9);
}

TEST(PerflintCandidatesTest, VocabularyMatchesPaper) {
  // vector -> set supported, hash_set not (Section 6.2).
  std::vector<DsKind> V = perflintCandidates(DsKind::Vector);
  EXPECT_NE(std::find(V.begin(), V.end(), DsKind::Set), V.end());
  EXPECT_EQ(std::find(V.begin(), V.end(), DsKind::HashSet), V.end());
  EXPECT_EQ(std::find(V.begin(), V.end(), DsKind::AvlSet), V.end());
  // "it does not support any replacement for set" (Section 6.4).
  EXPECT_TRUE(perflintCandidates(DsKind::Set).empty());
  EXPECT_TRUE(perflintCandidates(DsKind::Map).empty());
}

TEST(PerflintAdvisorTest, FindHeavyLargeStreamPrefersSet) {
  PerflintCoefficients Coefficients; // unit coefficients
  PerflintAdvisor Advisor(DsKind::Vector, Coefficients);
  for (int I = 0; I != 1000; ++I)
    Advisor.onOp(AppOp::Find, 5000, 0);
  EXPECT_EQ(Advisor.recommend(), DsKind::Set);
  EXPECT_LT(Advisor.predictedCost(DsKind::Set),
            Advisor.predictedCost(DsKind::Vector));
}

TEST(PerflintAdvisorTest, IterationHeavyKeepsVector) {
  PerflintCoefficients Coefficients;
  PerflintAdvisor Advisor(DsKind::List, Coefficients);
  for (int I = 0; I != 1000; ++I)
    Advisor.onOp(AppOp::Iterate, 200, 200);
  // Vector iteration is the cheapest in the hand model.
  EXPECT_EQ(Advisor.recommend(), DsKind::Vector);
}

TEST(PerflintAdvisorTest, UnsupportedOriginalKeepsIt) {
  PerflintCoefficients Coefficients;
  PerflintAdvisor Advisor(DsKind::Set, Coefficients);
  EXPECT_FALSE(Advisor.supported());
  Advisor.onOp(AppOp::Find, 100, 0);
  EXPECT_EQ(Advisor.recommend(), DsKind::Set);
}

TEST(PerflintAdvisorTest, CoefficientsBiasTheChoice) {
  PerflintCoefficients Coefficients;
  Coefficients[DsKind::Set] = 100.0; // make tree time expensive
  PerflintAdvisor Advisor(DsKind::Vector, Coefficients);
  for (int I = 0; I != 100; ++I)
    Advisor.onOp(AppOp::Find, 50, 0);
  EXPECT_NE(Advisor.recommend(), DsKind::Set);
}

TEST(PerflintCoefficientsTest, RoundTrip) {
  PerflintCoefficients C;
  C[DsKind::Vector] = 1.5;
  C[DsKind::HashMap] = 0.25;
  PerflintCoefficients D;
  ASSERT_TRUE(PerflintCoefficients::fromString(C.toString(), D));
  EXPECT_DOUBLE_EQ(D[DsKind::Vector], 1.5);
  EXPECT_DOUBLE_EQ(D[DsKind::HashMap], 0.25);
  PerflintCoefficients Bad;
  EXPECT_FALSE(PerflintCoefficients::fromString("1 2 nope", Bad));
}

TEST(PerflintCalibrationTest, FitsPositiveCoefficients) {
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 200;
  Cfg.MaxInitialSize = 500;
  PerflintCoefficients C =
      calibratePerflint(Cfg, MachineConfig::core2(), 1, 6);
  for (unsigned I = 0; I != NumDsKinds; ++I)
    EXPECT_GT(C.CyclesPerUnit[I], 0.0);
}

TEST(PerflintCalibrationTest, PredictionsCorrelateWithMeasurement) {
  AppConfig Cfg;
  Cfg.TotalInterfCalls = 200;
  Cfg.MaxInitialSize = 500;
  MachineConfig MC = MachineConfig::core2();
  PerflintCoefficients C = calibratePerflint(Cfg, MC, 1, 8);
  // On a fresh app, predicted vector cost should land within ~5x of the
  // measured cycles (the hand model is coarse; the regression anchors it).
  AppSpec Spec = AppSpec::fromSeed(999, Cfg);
  PerflintAdvisor Advisor(DsKind::Vector, C);
  RunOutcome Out = runApp(Spec, DsKind::Vector, MC, &Advisor);
  double Predicted = Advisor.predictedCost(DsKind::Vector);
  EXPECT_GT(Predicted, Out.Cycles / 5);
  EXPECT_LT(Predicted, Out.Cycles * 5);
}
