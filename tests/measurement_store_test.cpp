//===- tests/measurement_store_test.cpp - Persistent measurements ---------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
// The on-disk MeasurementCache (DESIGN.md §12):
//
//  * brainy-mcache files round-trip bit-exactly (%a cycle values) and
//    re-serialise byte-identically;
//  * the config fingerprint rejects measurements recorded under different
//    generator or machine parameters;
//  * corruption, truncation at every offset, and injected I/O faults all
//    degrade to recompute — a bad cache file never changes a result and
//    never half-restores;
//  * a warm `Brainy::train` rerun is byte-identical to the cold run, hits
//    the cache for every Phase I measurement, and stays identical when the
//    job count changes.
//
//===----------------------------------------------------------------------===//

#include "core/Brainy.h"
#include "core/MeasurementStore.h"
#include "core/TrainingFramework.h"
#include "support/FaultInjector.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace brainy;

namespace {

struct FaultGuard {
  explicit FaultGuard(const std::string &Spec) {
    Error E = FaultInjector::instance().configure(Spec);
    EXPECT_FALSE(E) << E.message();
  }
  ~FaultGuard() { FaultInjector::instance().clear(); }
};

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "brainy_mstore_" + Name;
}

TrainOptions tinyOptions() {
  TrainOptions Opts;
  Opts.TargetPerDs = 3;
  Opts.MaxSeeds = 200;
  Opts.GenConfig.TotalInterfCalls = 120;
  Opts.GenConfig.MaxInitialSize = 200;
  Opts.Net.Epochs = 10;
  Opts.Jobs = 1;
  return Opts;
}

/// Fills \p Cache with awkward cycle values: fractions whose decimal
/// rendering would round, and huge magnitudes — exactly what %a must carry
/// through unchanged. (In place: the cache owns a mutex, so it cannot be
/// returned by value.)
void populateCache(MeasurementCache &Cache) {
  CycleRecord A;
  A.Seed = 3;
  A.Mask = (1u << 0) | (1u << 4);
  A.Cycles[0] = 70223698.0;
  A.Cycles[4] = 0.1 + 0.2; // not exactly 0.3 — must survive bit-for-bit
  Cache.restoreRecord(A);
  CycleRecord B;
  B.Seed = 90000000001ull;
  B.Mask = (1u << 2);
  B.Cycles[2] = 1.5e18;
  Cache.restoreRecord(B);
}

void expectSameRecords(const MeasurementCache &A, const MeasurementCache &B) {
  std::vector<CycleRecord> RA = A.records();
  std::vector<CycleRecord> RB = B.records();
  ASSERT_EQ(RA.size(), RB.size());
  for (size_t I = 0; I != RA.size(); ++I) {
    EXPECT_EQ(RA[I].Seed, RB[I].Seed);
    EXPECT_EQ(RA[I].Mask, RB[I].Mask);
    for (unsigned K = 0; K != NumDsKinds; ++K)
      if (RA[I].Mask & (1u << K))
        EXPECT_EQ(RA[I].Cycles[K], RB[I].Cycles[K])
            << "seed " << RA[I].Seed << " kind " << K;
  }
}

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

TEST(MeasurementStoreTest, FingerprintSeesEveryRelevantKnob) {
  AppConfig Gen;
  MachineConfig MC = MachineConfig::core2();
  uint64_t Base = measurementFingerprint(Gen, MC);
  EXPECT_EQ(Base, measurementFingerprint(Gen, MC)) << "not deterministic";

  AppConfig Gen2 = Gen;
  Gen2.TotalInterfCalls += 1;
  EXPECT_NE(Base, measurementFingerprint(Gen2, MC));

  AppConfig Gen3 = Gen;
  Gen3.OpDropProb += 0.001;
  EXPECT_NE(Base, measurementFingerprint(Gen3, MC));

  MachineConfig MC2 = MC;
  MC2.L1.SizeBytes *= 2;
  EXPECT_NE(Base, measurementFingerprint(Gen, MC2));

  MachineConfig MC3 = MC;
  MC3.StreamHitCycles += 0.25;
  EXPECT_NE(Base, measurementFingerprint(Gen, MC3));

  EXPECT_NE(measurementFingerprint(Gen, MachineConfig::core2()),
            measurementFingerprint(Gen, MachineConfig::atom()));
}

//===----------------------------------------------------------------------===//
// Round trip
//===----------------------------------------------------------------------===//

TEST(MeasurementStoreTest, SaveLoadRoundTripsBitExactly) {
  AppConfig Gen;
  MachineConfig MC = MachineConfig::core2();
  MeasurementCache Cache;
  populateCache(Cache);
  std::string Path = tmpPath("roundtrip.txt");

  size_t Saved = 0;
  Error E = saveMeasurements(Path, Cache, Gen, MC, &Saved);
  ASSERT_FALSE(E) << E.message();
  EXPECT_EQ(Saved, 2u);

  MeasurementCache Loaded;
  Expected<size_t> Count = loadMeasurements(Path, Loaded, Gen, MC);
  ASSERT_TRUE(static_cast<bool>(Count)) << Count.error().message();
  EXPECT_EQ(*Count, 2u);
  expectSameRecords(Cache, Loaded);

  // Restored records are not fresh measurements.
  EXPECT_EQ(Loaded.freshMeasurements(), 0u);

  // Serialise → parse → serialise is byte-identical: the save format has
  // one spelling per cache, so warm reruns rewrite the file bit-for-bit.
  EXPECT_EQ(measurementsToString(Cache, Gen, MC),
            measurementsToString(Loaded, Gen, MC));
  std::remove(Path.c_str());
}

TEST(MeasurementStoreTest, MergeCountsFreshButRestoreDoesNot) {
  MeasurementCache Cache;
  CycleRecord R;
  R.Seed = 11;
  R.Mask = (1u << 1) | (1u << 3);
  R.Cycles[1] = 2.0;
  R.Cycles[3] = 4.0;
  Cache.restoreRecord(R);
  EXPECT_EQ(Cache.freshMeasurements(), 0u);

  // Re-merging the restored bits learns nothing; one new bit counts once.
  Cache.mergeRecord(R);
  EXPECT_EQ(Cache.freshMeasurements(), 0u);
  CycleRecord R2 = R;
  R2.Mask = (1u << 1) | (1u << 5);
  R2.Cycles[5] = 8.0;
  Cache.mergeRecord(R2);
  EXPECT_EQ(Cache.freshMeasurements(), 1u);
}

//===----------------------------------------------------------------------===//
// Failure paths: every bad file degrades to recompute
//===----------------------------------------------------------------------===//

TEST(MeasurementStoreTest, MissingFileIsPlainIoError) {
  AppConfig Gen;
  MachineConfig MC = MachineConfig::core2();
  MeasurementCache Cache;
  Expected<size_t> Count =
      loadMeasurements(tmpPath("does_not_exist.txt"), Cache, Gen, MC);
  ASSERT_FALSE(static_cast<bool>(Count));
  EXPECT_EQ(Count.error().code(), ErrCode::IoError);
  EXPECT_EQ(Cache.seeds(), 0u);
}

TEST(MeasurementStoreTest, RejectsEveryHeaderAndPayloadCorruption) {
  AppConfig Gen;
  MachineConfig MC = MachineConfig::core2();
  MeasurementCache Seeded;
  populateCache(Seeded);
  std::string Good = measurementsToString(Seeded, Gen, MC);

  auto ParseInto = [&](const std::string &Text, const AppConfig &G,
                       const MachineConfig &M) {
    MeasurementCache Cache;
    Expected<size_t> Count = parseMeasurements(Text, Cache, G, M);
    EXPECT_EQ(Cache.seeds(), 0u) << "failed parse touched the cache";
    return Count;
  };

  auto CodeOf = [&](const std::string &Text) {
    Expected<size_t> Count = ParseInto(Text, Gen, MC);
    EXPECT_FALSE(static_cast<bool>(Count));
    return Count ? ErrCode::Ok : Count.error().code();
  };

  EXPECT_EQ(CodeOf(""), ErrCode::Truncated);
  EXPECT_EQ(CodeOf("brainy-bundle v2\n"), ErrCode::BadMagic);
  std::string BadVersion = Good;
  BadVersion.replace(BadVersion.find("v1"), 2, "v9");
  EXPECT_EQ(CodeOf(BadVersion), ErrCode::BadVersion);

  // Payload byte flip → checksum.
  std::string Flipped = Good;
  Flipped[Flipped.size() - 2] ^= 0x20;
  EXPECT_EQ(CodeOf(Flipped), ErrCode::BadChecksum);

  // Trailing garbage after the declared payload.
  EXPECT_EQ(CodeOf(Good + "extra\n"), ErrCode::BadFormat);

  // Wrong machine and wrong generator config are distinct rejections.
  Expected<size_t> Wrong =
      ParseInto(Good, Gen, MachineConfig::atom());
  ASSERT_FALSE(static_cast<bool>(Wrong));
  EXPECT_EQ(Wrong.error().code(), ErrCode::MachineMismatch);
  AppConfig Gen2 = Gen;
  Gen2.TotalInterfCalls += 1;
  Expected<size_t> Stale = ParseInto(Good, Gen2, MC);
  ASSERT_FALSE(static_cast<bool>(Stale));
  EXPECT_EQ(Stale.error().code(), ErrCode::TagMismatch);
}

TEST(MeasurementStoreTest, TruncationAtEveryOffsetNeverHalfRestores) {
  AppConfig Gen;
  MachineConfig MC = MachineConfig::core2();
  MeasurementCache Seeded;
  populateCache(Seeded);
  std::string Good = measurementsToString(Seeded, Gen, MC);
  for (size_t Len = 0; Len != Good.size(); ++Len) {
    MeasurementCache Cache;
    Expected<size_t> Count =
        parseMeasurements(Good.substr(0, Len), Cache, Gen, MC);
    EXPECT_FALSE(static_cast<bool>(Count)) << "prefix of " << Len
                                           << " bytes parsed";
    EXPECT_EQ(Cache.seeds(), 0u) << "prefix of " << Len
                                 << " bytes half-restored";
  }
}

TEST(MeasurementStoreTest, InjectedIoFaultsFailSaveAndLoadCleanly) {
  AppConfig Gen;
  MachineConfig MC = MachineConfig::core2();
  MeasurementCache Cache;
  populateCache(Cache);
  std::string Path = tmpPath("faulted.txt");
  std::remove(Path.c_str());

  {
    FaultGuard Guard("io:1:7");
    Error E = saveMeasurements(Path, Cache, Gen, MC);
    ASSERT_TRUE(static_cast<bool>(E));
    EXPECT_EQ(E.code(), ErrCode::FaultInjected);
    std::FILE *F = std::fopen(Path.c_str(), "rb");
    EXPECT_EQ(F, nullptr) << "failed save left a file behind";
    if (F)
      std::fclose(F);

    MeasurementCache Loaded;
    Expected<size_t> Count = loadMeasurements(Path, Loaded, Gen, MC);
    ASSERT_FALSE(static_cast<bool>(Count));
    EXPECT_EQ(Count.error().code(), ErrCode::FaultInjected);
    EXPECT_EQ(Loaded.seeds(), 0u);
  }

  // Injector cleared: the same calls succeed.
  ASSERT_FALSE(saveMeasurements(Path, Cache, Gen, MC));
  MeasurementCache Loaded;
  ASSERT_TRUE(static_cast<bool>(loadMeasurements(Path, Loaded, Gen, MC)));
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Warm training runs
//===----------------------------------------------------------------------===//

TEST(MeasurementStoreTest, WarmTrainIsByteIdenticalAndFullyCached) {
  MachineConfig MC = MachineConfig::core2();
  std::string Path = tmpPath("warm_cache.txt");
  std::remove(Path.c_str());

  TrainOptions Opts = tinyOptions();
  Opts.MeasurementCacheFile = Path;
  std::string Cold = Brainy::train(Opts, MC).toString();

  // The warm framework restores the cold run's measurements and then
  // answers every Phase I lookup from them: zero fresh measurements.
  {
    TrainingFramework Warm(Opts, MC);
    EXPECT_GT(Warm.loadedMeasurements(), 0u);
    Warm.phaseOneAll();
    EXPECT_EQ(Warm.measurements().freshMeasurements(), 0u);
  }

  // Warm retrain: byte-identical bundle.
  EXPECT_EQ(Brainy::train(Opts, MC).toString(), Cold);

  // Warm retrain under a different job count: still byte-identical.
  TrainOptions Parallel = Opts;
  Parallel.Jobs = 3;
  EXPECT_EQ(Brainy::train(Parallel, MC).toString(), Cold);
  std::remove(Path.c_str());
}

TEST(MeasurementStoreTest, CorruptCacheFileFallsBackToRecompute) {
  MachineConfig MC = MachineConfig::core2();
  std::string Path = tmpPath("corrupt_cache.txt");

  TrainOptions Opts = tinyOptions();
  Opts.MeasurementCacheFile = Path;
  std::string Cold = Brainy::train(Opts, MC).toString();

  // Corrupt the file on disk: the warm run must detect it (checksum),
  // recompute everything, produce the identical bundle, and rewrite a
  // valid cache.
  {
    std::FILE *F = std::fopen(Path.c_str(), "rb+");
    ASSERT_NE(F, nullptr);
    std::fseek(F, -3, SEEK_END);
    std::fputc('!', F);
    std::fclose(F);
  }
  {
    TrainingFramework Corrupted(Opts, MC);
    EXPECT_EQ(Corrupted.loadedMeasurements(), 0u);
  }
  EXPECT_EQ(Brainy::train(Opts, MC).toString(), Cold);

  // The rewrite healed the file: the next run is warm again.
  {
    TrainingFramework Healed(Opts, MC);
    EXPECT_GT(Healed.loadedMeasurements(), 0u);
  }

  // An injected read fault degrades the same way — recompute, same bundle.
  {
    FaultGuard Guard("io:1:3");
    EXPECT_EQ(Brainy::train(Opts, MC).toString(), Cold);
  }
  std::remove(Path.c_str());
}

} // namespace
