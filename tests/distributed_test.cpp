//===- tests/distributed_test.cpp - Distributed Phase I -------------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
// The distributed training subsystem's contracts (DESIGN.md §10):
//
//  * the wire format round-trips every message, and the frame layer
//    rejects truncated and corrupted streams via length+CRC32;
//  * a coordinator-driven run merges bit-identically to the serial run
//    for any worker count;
//  * worker loss (BRAINY_FAULT=worker:...) degrades to SkippedSeeds, and
//    the surviving result equals a clean run with the lost seeds
//    pre-declared in TrainOptions::ExcludeSeeds;
//  * the remote-backed MeasurementCache tier serves hits into shards
//    without echoing them back as fresh records.
//
// Plus the cross-host fleet contracts (DESIGN.md §13):
//
//  * frames cross real TCP sockets, and a `--listen`-style fleet merges
//    bit-identically to the serial run;
//  * a worker crash over TCP is survived by reconnecting, an unreachable
//    endpoint is declared dead after bounded retries, and both degrade to
//    the same ExcludeSeeds equivalence as local loss;
//  * injected transport faults (BRAINY_FAULT=net:...) are deterministic
//    across worker counts;
//  * a coordinator restarted from a wave checkpoint — even with a
//    different fleet shape — produces identical results.
//
//===----------------------------------------------------------------------===//

#include "core/Checkpoint.h"
#include "core/MeasurementStore.h"
#include "distributed/Coordinator.h"
#include "distributed/Launch.h"
#include "distributed/Tcp.h"
#include "distributed/WireFormat.h"
#include "distributed/Worker.h"
#include "support/Error.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace brainy;
using namespace brainy::dist;

namespace {

/// In-memory loopback: writes append to a buffer, reads consume it.
/// Deterministic and corruptible — what the frame-layer tests need.
class BufferTransport : public Transport {
public:
  void writeAll(const void *Data, size_t Size) override {
    Buf.append(static_cast<const char *>(Data), Size);
  }
  bool readAll(void *Data, size_t Size, int /*TimeoutMs*/) override {
    if (Pos == Buf.size())
      return false;
    if (Buf.size() - Pos < Size)
      throw ErrorException(
          Error(ErrCode::Truncated, "buffer ends mid-datum"));
    std::memcpy(Data, Buf.data() + Pos, Size);
    Pos += Size;
    return true;
  }

  std::string Buf;
  size_t Pos = 0;
};

struct FaultGuard {
  explicit FaultGuard(const std::string &Spec) {
    Error E = FaultInjector::instance().configure(Spec);
    EXPECT_FALSE(E) << E.message();
  }
  ~FaultGuard() { FaultInjector::instance().clear(); }
};

TrainOptions tinyOptions() {
  TrainOptions Opts;
  Opts.TargetPerDs = 3;
  Opts.MaxSeeds = 200;
  Opts.GenConfig.TotalInterfCalls = 120;
  Opts.GenConfig.MaxInitialSize = 200;
  Opts.Net.Epochs = 10;
  Opts.Jobs = 1;
  return Opts;
}

using ResultArray = std::array<PhaseOneResult, NumModelKinds>;

/// A loopback `brainy worker --listen` fleet: each worker is a
/// TcpListener on an ephemeral 127.0.0.1 port, served by its own thread
/// running serveListener — accepting coordinator (re)connections, one at
/// a time, until stopped. Exactly the production shape minus the exec.
class TcpTestFleet {
public:
  explicit TcpTestFleet(unsigned N) {
    for (unsigned I = 0; I != N; ++I) {
      Listeners.push_back(
          std::make_unique<TcpListener>(TcpEndpoint{"127.0.0.1", 0}));
      Endpoints.push_back("127.0.0.1:" +
                          std::to_string(Listeners.back()->port()));
    }
    for (unsigned I = 0; I != N; ++I)
      Serving.emplace_back(
          [this, I] { serveListener(*Listeners[I], &StopFlag); });
  }
  ~TcpTestFleet() {
    StopFlag.store(true, std::memory_order_release);
    for (std::thread &T : Serving)
      T.join();
  }
  TcpTestFleet(const TcpTestFleet &) = delete;
  TcpTestFleet &operator=(const TcpTestFleet &) = delete;

  std::vector<std::string> Endpoints;

private:
  std::vector<std::unique_ptr<TcpListener>> Listeners;
  std::atomic<bool> StopFlag{false};
  std::vector<std::thread> Serving;
};

/// An endpoint guaranteed to refuse connections: bind an ephemeral port,
/// note it, and close the listener before anyone dials in.
std::string refusedEndpoint() {
  TcpListener Probe(TcpEndpoint{"127.0.0.1", 0});
  return "127.0.0.1:" + std::to_string(Probe.port());
}

void expectSameResults(const ResultArray &A, const ResultArray &B) {
  for (unsigned M = 0; M != NumModelKinds; ++M) {
    EXPECT_EQ(A[M].SeedsScanned, B[M].SeedsScanned) << "family " << M;
    EXPECT_EQ(A[M].MarginRejects, B[M].MarginRejects) << "family " << M;
    EXPECT_EQ(A[M].SkippedSeeds, B[M].SkippedSeeds) << "family " << M;
    ASSERT_EQ(A[M].SeedDsPairs.size(), B[M].SeedDsPairs.size())
        << "family " << M;
    for (size_t I = 0; I != A[M].SeedDsPairs.size(); ++I) {
      EXPECT_EQ(A[M].SeedDsPairs[I].Seed, B[M].SeedDsPairs[I].Seed);
      EXPECT_EQ(A[M].SeedDsPairs[I].BestDs, B[M].SeedDsPairs[I].BestDs);
    }
  }
}

//===----------------------------------------------------------------------===//
// Wire format
//===----------------------------------------------------------------------===//

TEST(WireFormatTest, InitRoundTripsEveryField) {
  InitMsg M;
  M.Machine = MachineConfig::atom();
  M.Config.TotalInterfCalls = 1234;
  M.Config.DataElemSizes = {8, 24};
  M.Config.MaxIterCount = 99;
  M.Config.OrderObliviousProb = 0.25;
  M.EvalRetries = 5;
  M.ExcludeSeeds = {3, 17, 4096};

  InitMsg Back = decodeInit(encodeInit(M));
  EXPECT_EQ(Back.Machine.Name, M.Machine.Name);
  EXPECT_EQ(Back.Machine.L1.SizeBytes, M.Machine.L1.SizeBytes);
  EXPECT_EQ(Back.Machine.L2.Associativity, M.Machine.L2.Associativity);
  EXPECT_EQ(Back.Machine.PrefetchDepth, M.Machine.PrefetchDepth);
  EXPECT_EQ(Back.Machine.MemoryCycles, M.Machine.MemoryCycles);
  EXPECT_EQ(Back.Machine.BaseCpi, M.Machine.BaseCpi);
  EXPECT_EQ(Back.Config.TotalInterfCalls, M.Config.TotalInterfCalls);
  EXPECT_EQ(Back.Config.DataElemSizes, M.Config.DataElemSizes);
  EXPECT_EQ(Back.Config.MaxIterCount, M.Config.MaxIterCount);
  EXPECT_EQ(Back.Config.OrderObliviousProb, M.Config.OrderObliviousProb);
  EXPECT_EQ(Back.EvalRetries, M.EvalRetries);
  EXPECT_EQ(Back.ExcludeSeeds, M.ExcludeSeeds);
}

TEST(WireFormatTest, InitRejectsWrongMagic) {
  InitMsg M;
  std::string Payload = encodeInit(M);
  // The magic string starts after the kind byte and the length prefix.
  Payload[5 + 1] ^= 0x20;
  try {
    decodeInit(Payload);
    FAIL() << "corrupt magic decoded";
  } catch (const ErrorException &E) {
    EXPECT_EQ(E.error().code(), ErrCode::BadMagic);
  }
}

TEST(WireFormatTest, EvalChunkAndCacheMessagesRoundTrip) {
  EvalChunkMsg Chunk;
  Chunk.BeginSeed = 97;
  Chunk.EndSeed = 113;
  Chunk.Wanted[1] = Chunk.Wanted[4] = true;
  EvalChunkMsg ChunkBack = decodeEvalChunk(encodeEvalChunk(Chunk));
  EXPECT_EQ(ChunkBack.BeginSeed, 97u);
  EXPECT_EQ(ChunkBack.EndSeed, 113u);
  EXPECT_EQ(ChunkBack.Wanted, Chunk.Wanted);

  CacheGetMsg Get;
  Get.Seed = 41;
  EXPECT_EQ(decodeCacheGet(encodeCacheGet(Get)).Seed, 41u);

  CacheHitMsg Miss;
  EXPECT_FALSE(decodeCacheHit(encodeCacheHit(Miss)).Found);

  CacheHitMsg Hit;
  Hit.Found = true;
  Hit.Rec.Seed = 41;
  Hit.Rec.Mask = (1u << 0) | (1u << 3);
  Hit.Rec.Cycles[0] = 123.5;
  Hit.Rec.Cycles[3] = 88.25;
  CacheHitMsg HitBack = decodeCacheHit(encodeCacheHit(Hit));
  ASSERT_TRUE(HitBack.Found);
  EXPECT_EQ(HitBack.Rec.Seed, 41u);
  EXPECT_EQ(HitBack.Rec.Mask, Hit.Rec.Mask);
  EXPECT_EQ(HitBack.Rec.Cycles[0], 123.5);
  EXPECT_EQ(HitBack.Rec.Cycles[3], 88.25);
}

TEST(WireFormatTest, ChunkDoneRoundTripsSlotsAndFreshRecords) {
  ChunkDoneMsg M;
  M.BeginSeed = 17;
  M.Slots.resize(3);
  M.Slots[0].Ok = true;
  M.Slots[0].Outcomes[2].Matched = true;
  M.Slots[0].Outcomes[2].Best = DsKind::Deque;
  M.Slots[0].Outcomes[2].Margin = 0.125;
  M.Slots[0].Outcomes[2].NumCandidates = 3;
  M.Slots[1].Ok = false; // a skipped seed travels too
  M.Slots[2].Ok = true;
  CycleRecord Rec;
  Rec.Seed = 18;
  Rec.Mask = 1u << 5;
  Rec.Cycles[5] = 777.0;
  M.Fresh.push_back(Rec);

  ChunkDoneMsg Back = decodeChunkDone(encodeChunkDone(M));
  EXPECT_EQ(Back.BeginSeed, 17u);
  ASSERT_EQ(Back.Slots.size(), 3u);
  EXPECT_TRUE(Back.Slots[0].Ok);
  EXPECT_TRUE(Back.Slots[0].Outcomes[2].Matched);
  EXPECT_EQ(Back.Slots[0].Outcomes[2].Best, DsKind::Deque);
  EXPECT_EQ(Back.Slots[0].Outcomes[2].Margin, 0.125);
  EXPECT_EQ(Back.Slots[0].Outcomes[2].NumCandidates, 3u);
  EXPECT_FALSE(Back.Slots[1].Ok);
  ASSERT_EQ(Back.Fresh.size(), 1u);
  EXPECT_EQ(Back.Fresh[0].Seed, 18u);
  EXPECT_EQ(Back.Fresh[0].Cycles[5], 777.0);
}

TEST(WireFormatTest, DecodersRejectWrongKindAndTrailingBytes) {
  std::string Payload = encodeCacheGet(CacheGetMsg{});
  EXPECT_THROW(decodeEvalChunk(Payload), ErrorException);
  Payload.push_back('\0');
  EXPECT_THROW(decodeCacheGet(Payload), ErrorException);
}

//===----------------------------------------------------------------------===//
// Frame layer
//===----------------------------------------------------------------------===//

TEST(FrameTest, RoundTripsPayloadsAndSignalsCleanEof) {
  BufferTransport T;
  sendFrame(T, "hello");
  sendFrame(T, std::string("\x00\x01\x02", 3));
  std::string Out;
  ASSERT_TRUE(recvFrame(T, Out, -1));
  EXPECT_EQ(Out, "hello");
  ASSERT_TRUE(recvFrame(T, Out, -1));
  EXPECT_EQ(Out, std::string("\x00\x01\x02", 3));
  EXPECT_FALSE(recvFrame(T, Out, -1)) << "clean EOF at a frame boundary";
}

TEST(FrameTest, CorruptPayloadByteFailsTheCrc) {
  BufferTransport T;
  sendFrame(T, "determinism");
  T.Buf[8 + 3] ^= 0x01; // flip one payload bit past the 8-byte header
  std::string Out;
  try {
    recvFrame(T, Out, -1);
    FAIL() << "corrupt frame accepted";
  } catch (const ErrorException &E) {
    EXPECT_EQ(E.error().code(), ErrCode::BadChecksum);
  }
}

TEST(FrameTest, TruncatedFrameIsRejected) {
  BufferTransport Full;
  sendFrame(Full, "some payload bytes");
  BufferTransport T;
  T.Buf = Full.Buf.substr(0, Full.Buf.size() - 5);
  std::string Out;
  try {
    recvFrame(T, Out, -1);
    FAIL() << "truncated frame accepted";
  } catch (const ErrorException &E) {
    EXPECT_EQ(E.error().code(), ErrCode::Truncated);
  }
}

TEST(FrameTest, ImplausibleLengthPrefixIsRejectedBeforeAllocation) {
  BufferTransport T;
  // Header claiming a ~4 GiB payload; must fail on the length check, not
  // try to allocate it.
  T.Buf.assign("\xff\xff\xff\xff\x00\x00\x00\x00", 8);
  std::string Out;
  try {
    recvFrame(T, Out, -1);
    FAIL() << "absurd frame length accepted";
  } catch (const ErrorException &E) {
    EXPECT_EQ(E.error().code(), ErrCode::BadFormat);
  }
}

//===----------------------------------------------------------------------===//
// Remote-backed cache tier
//===----------------------------------------------------------------------===//

TEST(RemoteCacheTest, ShardUsesRemoteHitsWithoutEchoingThemBack) {
  MeasurementCache Remote;
  CycleRecord Seeded;
  Seeded.Seed = 7;
  Seeded.Mask = 1u << 2;
  Seeded.Cycles[2] = 42.0;
  Remote.mergeRecord(Seeded);

  MeasurementCache Local;
  unsigned Fetches = 0;
  Local.setRemoteTier([&](uint64_t Seed, CycleRecord &Out) {
    ++Fetches;
    return Remote.lookupAll(Seed, Out);
  });

  MeasurementCache::Shard Shard = Local.shard();
  unsigned Measured = 0;
  auto Measure = [&] {
    ++Measured;
    return 5.0;
  };
  // Remote hit: no local measurement, value comes from the remote tier.
  EXPECT_EQ(Shard.cyclesOf(7, static_cast<DsKind>(2), Measure), 42.0);
  EXPECT_EQ(Fetches, 1u);
  EXPECT_EQ(Measured, 0u);
  // Same seed, kind the remote lacks: measured locally, but the remote is
  // not asked again for this seed (its map is frozen during a shard).
  EXPECT_EQ(Shard.cyclesOf(7, static_cast<DsKind>(4), Measure), 5.0);
  EXPECT_EQ(Fetches, 1u);
  EXPECT_EQ(Measured, 1u);
  // Remote miss on another seed: fetched once, then measured.
  EXPECT_EQ(Shard.cyclesOf(9, static_cast<DsKind>(2), Measure), 5.0);
  EXPECT_EQ(Fetches, 2u);
  EXPECT_EQ(Measured, 2u);

  // Fresh records report only local measurements — the remote hit for
  // (7, kind 2) must not ride back.
  std::vector<CycleRecord> Fresh = Shard.freshRecords(0, 16);
  ASSERT_EQ(Fresh.size(), 2u);
  EXPECT_EQ(Fresh[0].Seed, 7u);
  EXPECT_EQ(Fresh[0].Mask, 1u << 4);
  EXPECT_EQ(Fresh[1].Seed, 9u);
  EXPECT_EQ(Fresh[1].Mask, 1u << 2);
}

//===----------------------------------------------------------------------===//
// Coordinator determinism
//===----------------------------------------------------------------------===//

TEST(DistributedTrainingTest, MergeIdenticalAcrossWorkerCounts) {
  MachineConfig MC = MachineConfig::core2();
  TrainingFramework Serial(tinyOptions(), MC);
  ResultArray Want = Serial.phaseOneAll();

  for (unsigned Workers : {1u, 2u, 4u}) {
    TrainOptions Opts = tinyOptions();
    Coordinator Coord(MC, Opts, Workers, threadLauncher());
    Opts.Distribution = &Coord;
    TrainingFramework Distributed(Opts, MC);
    expectSameResults(Want, Distributed.phaseOneAll());
    EXPECT_EQ(Coord.lostSeeds(), 0u) << Workers << " workers";
    EXPECT_GT(Coord.cache().seeds(), 0u)
        << "workers never fed the shared cache";
  }
}

TEST(DistributedTrainingTest, ExcludedSeedsTravelToWorkers) {
  MachineConfig MC = MachineConfig::core2();
  TrainOptions Opts = tinyOptions();
  Opts.ExcludeSeeds = {2, 3, 50};

  TrainingFramework Serial(Opts, MC);
  ResultArray Want = Serial.phaseOneAll();

  Coordinator Coord(MC, Opts, 2, threadLauncher());
  TrainOptions DistOpts = Opts;
  DistOpts.Distribution = &Coord;
  TrainingFramework Distributed(DistOpts, MC);
  expectSameResults(Want, Distributed.phaseOneAll());
}

TEST(DistributedTrainingTest, WarmMeasurementCacheSkipsWorkerSimulation) {
  MachineConfig MC = MachineConfig::core2();
  std::string Path = ::testing::TempDir() + "brainy_dist_mcache.txt";
  std::remove(Path.c_str());

  // Cold distributed run: the workers measure everything (the coordinator
  // cache counts each record they stream back as fresh), then the
  // coordinator's cache — which holds every wave's measurements — is
  // persisted. The cold run must use the same worker count as the warm
  // one: wave width steers how far past the early-stop point the
  // framework speculatively evaluates, so only a same-shape rerun is
  // guaranteed to find every measurement on disk.
  TrainOptions Opts = tinyOptions();
  Opts.MeasurementCacheFile = Path;
  ResultArray Want;
  {
    Coordinator Cold(MC, Opts, 3, threadLauncher());
    TrainOptions ColdOpts = Opts;
    ColdOpts.Distribution = &Cold;
    TrainingFramework FW(ColdOpts, MC);
    Want = FW.phaseOneAll();
    EXPECT_GT(Cold.cache().freshMeasurements(), 0u)
        << "cold workers measured nothing";
    Error E = saveMeasurements(Path, Cold.cache(), Opts.GenConfig, MC);
    ASSERT_FALSE(E) << E.message();
  }

  // Warm distributed run: the coordinator preloads the file, workers hit
  // the remote tier for every lookup, and no worker streams back a single
  // fresh record.
  Coordinator Coord(MC, Opts, 3, threadLauncher());
  EXPECT_GT(Coord.cache().seeds(), 0u)
      << "coordinator did not preload the measurement cache";
  TrainOptions DistOpts = Opts;
  DistOpts.Distribution = &Coord;
  TrainingFramework Warm(DistOpts, MC);
  expectSameResults(Want, Warm.phaseOneAll());
  EXPECT_EQ(Coord.cache().freshMeasurements(), 0u)
      << "warm workers re-simulated cached seeds";
  std::remove(Path.c_str());
}

TEST(DistributedTrainingTest, WorkerLossEqualsExcludedSeeds) {
  MachineConfig MC = MachineConfig::core2();

  ResultArray Faulty;
  uint64_t Lost = 0;
  uint64_t Respawned = 0;
  {
    // Deterministic worker deaths, keyed by chunk first seed: the same
    // chunks die at any worker count.
    FaultGuard Guard("worker:0.3:11");
    TrainOptions Opts = tinyOptions();
    Coordinator Coord(MC, Opts, 3, threadLauncher());
    Opts.Distribution = &Coord;
    TrainingFramework FW(Opts, MC);
    Faulty = FW.phaseOneAll();
    Lost = Coord.lostSeeds();
    Respawned = Coord.respawns();
  }
  ASSERT_GT(Lost, 0u) << "fault rate produced no worker deaths";
  EXPECT_GT(Respawned, 0u) << "dead workers were never replaced";

  std::set<uint64_t> Skipped;
  for (unsigned M = 0; M != NumModelKinds; ++M)
    Skipped.insert(Faulty[M].SkippedSeeds.begin(),
                   Faulty[M].SkippedSeeds.end());
  ASSERT_FALSE(Skipped.empty());

  // The §10 acceptance property: the surviving merge equals a clean local
  // run whose seed stream never contained the lost seeds.
  TrainOptions CleanOpts = tinyOptions();
  CleanOpts.ExcludeSeeds = Skipped;
  TrainingFramework Clean(CleanOpts, MC);
  expectSameResults(Faulty, Clean.phaseOneAll());
}

//===----------------------------------------------------------------------===//
// TCP transport
//===----------------------------------------------------------------------===//

TEST(TcpEndpointTest, ParseAcceptsHostPortAndRejectsGarbage) {
  TcpEndpoint Ep = parseEndpoint("127.0.0.1:8080");
  EXPECT_EQ(Ep.Host, "127.0.0.1");
  EXPECT_EQ(Ep.Port, 8080);
  EXPECT_EQ(endpointName(Ep), "127.0.0.1:8080");

  Ep = parseEndpoint("worker-3.fleet.internal:0");
  EXPECT_EQ(Ep.Host, "worker-3.fleet.internal");
  EXPECT_EQ(Ep.Port, 0);

  for (const char *Bad : {"nohost", "host:", ":123", "host:abc", "host:70000",
                          "host:12x", ""})
    EXPECT_THROW(parseEndpoint(Bad), ErrorException) << "'" << Bad << "'";
}

TEST(TcpTransportTest, FramesCrossTheSocketAndBoundedAcceptTimesOut) {
  TcpListener Listener(TcpEndpoint{"127.0.0.1", 0});
  ASSERT_GT(Listener.port(), 0) << "ephemeral bind resolved no port";
  // Nobody has dialed in: a bounded accept returns null, not an error.
  EXPECT_EQ(Listener.acceptConnection(50), nullptr);

  std::thread Echo([&Listener] {
    std::unique_ptr<TcpTransport> Conn = Listener.acceptConnection(10000);
    ASSERT_TRUE(Conn) << "coordinator never connected";
    std::string Payload;
    while (recvFrame(*Conn, Payload, 10000))
      sendFrame(*Conn, Payload);
  });
  std::unique_ptr<TcpTransport> Client = TcpTransport::connectTo(
      parseEndpoint("127.0.0.1:" + std::to_string(Listener.port())), 10000);
  ASSERT_TRUE(Client);
  sendFrame(*Client, "over tcp");
  sendFrame(*Client, std::string("\x00\x01\x02", 3));
  std::string Back;
  ASSERT_TRUE(recvFrame(*Client, Back, 10000));
  EXPECT_EQ(Back, "over tcp");
  ASSERT_TRUE(recvFrame(*Client, Back, 10000));
  EXPECT_EQ(Back, std::string("\x00\x01\x02", 3));
  Client.reset(); // clean EOF ends the echo loop
  Echo.join();
}

TEST(TcpTransportTest, ConnectToRefusedPortThrowsIoError) {
  TcpEndpoint Dead = parseEndpoint(refusedEndpoint());
  try {
    TcpTransport::connectTo(Dead, 2000);
    FAIL() << "connect to a closed port succeeded";
  } catch (const ErrorException &E) {
    EXPECT_EQ(E.error().code(), ErrCode::IoError);
  }
}

//===----------------------------------------------------------------------===//
// Cross-host fleet (DESIGN.md §13)
//===----------------------------------------------------------------------===//

TEST(TcpFleetTest, MergeIdenticalToSerialOverTcp) {
  MachineConfig MC = MachineConfig::core2();
  TrainingFramework Serial(tinyOptions(), MC);
  ResultArray Want = Serial.phaseOneAll();

  TcpTestFleet Fleet(3);
  TrainOptions Opts = tinyOptions();
  Coordinator Coord(MC, Opts, 3, tcpLauncher(Fleet.Endpoints));
  Opts.Distribution = &Coord;
  TrainingFramework Distributed(Opts, MC);
  expectSameResults(Want, Distributed.phaseOneAll());
  EXPECT_EQ(Coord.lostSeeds(), 0u);
  EXPECT_EQ(Coord.declaredDead(), 0u);
  EXPECT_GT(Coord.cache().seeds(), 0u)
      << "TCP workers never fed the shared cache";
}

TEST(TcpFleetTest, WorkerCrashOverTcpEqualsExcludedSeeds) {
  MachineConfig MC = MachineConfig::core2();

  ResultArray Faulty;
  uint64_t Lost = 0;
  uint64_t Reconnects = 0;
  {
    // Same deterministic deaths as the local test: the worker drops the
    // socket without replying; the coordinator must reconnect to the
    // still-serving listener and press on.
    FaultGuard Guard("worker:0.3:11");
    TcpTestFleet Fleet(3);
    TrainOptions Opts = tinyOptions();
    Coordinator Coord(MC, Opts, 3, tcpLauncher(Fleet.Endpoints));
    Opts.Distribution = &Coord;
    TrainingFramework FW(Opts, MC);
    Faulty = FW.phaseOneAll();
    Lost = Coord.lostSeeds();
    Reconnects = Coord.respawns();
    EXPECT_EQ(Coord.declaredDead(), 0u)
        << "listeners kept serving; no slot should be declared dead";
  }
  ASSERT_GT(Lost, 0u) << "fault rate produced no worker deaths";
  EXPECT_GT(Reconnects, 0u) << "crashed workers were never reconnected";

  std::set<uint64_t> Skipped;
  for (unsigned M = 0; M != NumModelKinds; ++M)
    Skipped.insert(Faulty[M].SkippedSeeds.begin(),
                   Faulty[M].SkippedSeeds.end());
  ASSERT_FALSE(Skipped.empty());

  TrainOptions CleanOpts = tinyOptions();
  CleanOpts.ExcludeSeeds = Skipped;
  TrainingFramework Clean(CleanOpts, MC);
  expectSameResults(Faulty, Clean.phaseOneAll());
}

TEST(TcpFleetTest, UnreachableEndpointIsDeclaredDeadNotFatal) {
  MachineConfig MC = MachineConfig::core2();

  // Two live workers plus one endpoint nobody serves: slot 2's connects
  // are refused, the slot is declared dead after MaxSpawnFailures retry
  // cycles, and its chunks degrade to skipped seeds.
  TcpTestFleet Fleet(2);
  std::vector<std::string> Endpoints = Fleet.Endpoints;
  Endpoints.push_back(refusedEndpoint());

  TcpLaunchPolicy Fast;
  Fast.ConnectAttempts = 2;
  Fast.InitialBackoffMs = 1;
  Fast.ConnectTimeoutMs = 2000;

  ResultArray Faulty;
  TrainOptions Opts = tinyOptions();
  Coordinator Coord(MC, Opts, 3, tcpLauncher(Endpoints, Fast));
  {
    TrainOptions RunOpts = Opts;
    RunOpts.Distribution = &Coord;
    TrainingFramework FW(RunOpts, MC);
    Faulty = FW.phaseOneAll();
  }
  EXPECT_EQ(Coord.declaredDead(), 1u);
  ASSERT_GT(Coord.lostSeeds(), 0u) << "the dead slot was never assigned work";

  std::set<uint64_t> Skipped;
  for (unsigned M = 0; M != NumModelKinds; ++M)
    Skipped.insert(Faulty[M].SkippedSeeds.begin(),
                   Faulty[M].SkippedSeeds.end());
  ASSERT_FALSE(Skipped.empty());

  TrainOptions CleanOpts = tinyOptions();
  CleanOpts.ExcludeSeeds = Skipped;
  TrainingFramework Clean(CleanOpts, MC);
  expectSameResults(Faulty, Clean.phaseOneAll());
}

TEST(TcpFleetTest, NetFaultsAreDeterministicAcrossWorkerCounts) {
  MachineConfig MC = MachineConfig::core2();

  // Injected drops/timeouts/short-reads at the transport seam, keyed by
  // chunk first seed: the same chunks are lost at any fleet width and
  // over any transport. Width 3 runs over real TCP; the rest use threads
  // (the seam is coordinator-side, so the transport must not matter).
  std::vector<ResultArray> Runs;
  {
    FaultGuard Guard("net:0.25:7");
    for (unsigned Workers : {1u, 2u, 3u, 4u}) {
      TrainOptions Opts = tinyOptions();
      std::unique_ptr<TcpTestFleet> Fleet;
      WorkerLauncher Launcher;
      if (Workers == 3) {
        Fleet = std::make_unique<TcpTestFleet>(Workers);
        Launcher = tcpLauncher(Fleet->Endpoints);
      } else {
        Launcher = threadLauncher();
      }
      Coordinator Coord(MC, Opts, Workers, std::move(Launcher));
      Opts.Distribution = &Coord;
      TrainingFramework FW(Opts, MC);
      Runs.push_back(FW.phaseOneAll());
      EXPECT_GT(Coord.lostSeeds(), 0u)
          << "fault rate lost nothing at " << Workers << " workers";
    }
  }
  for (size_t I = 1; I != Runs.size(); ++I)
    expectSameResults(Runs[0], Runs[I]);

  // And the lost chunks degrade exactly like pre-excluded seeds.
  std::set<uint64_t> Skipped;
  for (unsigned M = 0; M != NumModelKinds; ++M)
    Skipped.insert(Runs[0][M].SkippedSeeds.begin(),
                   Runs[0][M].SkippedSeeds.end());
  ASSERT_FALSE(Skipped.empty());
  TrainOptions CleanOpts = tinyOptions();
  CleanOpts.ExcludeSeeds = Skipped;
  TrainingFramework Clean(CleanOpts, MC);
  expectSameResults(Runs[0], Clean.phaseOneAll());
}

TEST(TcpFleetTest, CheckpointResumeAcrossFleetShapesMatchesUninterrupted) {
  MachineConfig MC = MachineConfig::core2();
  std::string Path = ::testing::TempDir() + "brainy_tcp_ckpt.txt";
  std::remove(Path.c_str());

  TrainingFramework Serial(tinyOptions(), MC);
  ResultArray Want = Serial.phaseOneAll();

  // "Kill" a fleet run mid-stream: cap MaxSeeds at a few waves. The
  // checkpoint fingerprint deliberately excludes the seed budget, so the
  // committed wave boundary is a valid resume point for the full run.
  {
    TcpTestFleet Fleet(2);
    TrainOptions Opts = tinyOptions();
    Opts.MaxSeeds = 64;
    Opts.CheckpointFile = Path;
    Coordinator Coord(MC, Opts, 2, tcpLauncher(Fleet.Endpoints));
    Opts.Distribution = &Coord;
    TrainingFramework FW(Opts, MC);
    (void)FW.phaseOneAll();
  }

  // The restart may change fleet shape — the ordered merge is
  // partition-independent, so resuming 2-wide work on a 3-wide fleet
  // still reproduces the uninterrupted results bit-for-bit.
  {
    TcpTestFleet Fleet(3);
    TrainOptions Opts = tinyOptions();
    Opts.CheckpointFile = Path;
    Coordinator Coord(MC, Opts, 3, tcpLauncher(Fleet.Endpoints));
    Opts.Distribution = &Coord;
    TrainingFramework FW(Opts, MC);
    expectSameResults(Want, FW.phaseOneAll());
  }
  std::remove(Path.c_str());
}

TEST(TcpFleetTest, WarmMeasurementCacheOverTcpSkipsAllSimulation) {
  MachineConfig MC = MachineConfig::core2();
  std::string Path = ::testing::TempDir() + "brainy_tcp_mcache.txt";
  std::remove(Path.c_str());

  // Same shape constraint as the local warm test: cold and warm runs use
  // the same fleet width, so the warm wave schedule only touches seeds
  // the cold run measured.
  TrainOptions Opts = tinyOptions();
  Opts.MeasurementCacheFile = Path;
  ResultArray Want;
  {
    TcpTestFleet Fleet(3);
    Coordinator Cold(MC, Opts, 3, tcpLauncher(Fleet.Endpoints));
    TrainOptions ColdOpts = Opts;
    ColdOpts.Distribution = &Cold;
    TrainingFramework FW(ColdOpts, MC);
    Want = FW.phaseOneAll();
    EXPECT_GT(Cold.cache().freshMeasurements(), 0u)
        << "cold TCP workers measured nothing";
    Error E = saveMeasurements(Path, Cold.cache(), Opts.GenConfig, MC);
    ASSERT_FALSE(E) << E.message();
  }

  TcpTestFleet Fleet(3);
  Coordinator Warm(MC, Opts, 3, tcpLauncher(Fleet.Endpoints));
  EXPECT_GT(Warm.cache().seeds(), 0u)
      << "coordinator did not preload the measurement cache";
  TrainOptions WarmOpts = Opts;
  WarmOpts.Distribution = &Warm;
  TrainingFramework FW(WarmOpts, MC);
  expectSameResults(Want, FW.phaseOneAll());
  EXPECT_EQ(Warm.cache().freshMeasurements(), 0u)
      << "warm TCP workers re-simulated cached seeds";
  std::remove(Path.c_str());
}

} // namespace
