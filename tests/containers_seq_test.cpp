//===- tests/containers_seq_test.cpp - Vector/List/Deque tests ------------===//
//
// Part of the Brainy reproduction of PLDI 2011's "Brainy".
//
//===----------------------------------------------------------------------===//

#include "containers/Deque.h"
#include "containers/List.h"
#include "containers/Vector.h"
#include "machine/MachineModel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

using namespace brainy;
using namespace brainy::ds;

//===----------------------------------------------------------------------===//
// Vector
//===----------------------------------------------------------------------===//

TEST(VectorTest, PushAndAccess) {
  Vector V;
  for (Key K : {3, 1, 4, 1, 5})
    V.pushBack(K);
  EXPECT_EQ(V.size(), 5u);
  EXPECT_EQ(V.at(0), 3);
  EXPECT_EQ(V.at(4), 5);
}

TEST(VectorTest, PushFrontShiftsEverything) {
  Vector V;
  V.pushBack(1);
  V.pushBack(2);
  OpResult R = V.pushFront(0);
  EXPECT_TRUE(R.Found);
  EXPECT_EQ(R.Cost, 2u); // two elements shifted
  EXPECT_EQ(V.at(0), 0);
  EXPECT_EQ(V.at(2), 2);
}

TEST(VectorTest, InsertAtClampsAndShifts) {
  Vector V;
  for (Key K : {10, 20, 30})
    V.pushBack(K);
  V.insertAt(1, 15);
  EXPECT_EQ(V.at(1), 15);
  EXPECT_EQ(V.at(3), 30);
  V.insertAt(99, 40); // clamped to the tail
  EXPECT_EQ(V.at(4), 40);
}

TEST(VectorTest, FindCostIsElementsTouched) {
  Vector V;
  for (Key K = 0; K != 10; ++K)
    V.pushBack(K);
  OpResult Hit = V.find(4);
  EXPECT_TRUE(Hit.Found);
  EXPECT_EQ(Hit.Cost, 5u); // touched 0..4
  OpResult Miss = V.find(99);
  EXPECT_FALSE(Miss.Found);
  EXPECT_EQ(Miss.Cost, 10u); // full scan
}

TEST(VectorTest, EraseValueSearchesThenShifts) {
  Vector V;
  for (Key K : {7, 8, 9, 10})
    V.pushBack(K);
  OpResult R = V.eraseValue(8);
  EXPECT_TRUE(R.Found);
  EXPECT_EQ(R.Cost, 2u + 2u); // scan(7,8) + shift(9,10)
  EXPECT_EQ(V.size(), 3u);
  EXPECT_EQ(V.at(1), 9);
  EXPECT_FALSE(V.eraseValue(8).Found);
}

TEST(VectorTest, EraseAtOutOfRange) {
  Vector V;
  V.pushBack(1);
  EXPECT_FALSE(V.eraseAt(1).Found);
  EXPECT_TRUE(V.eraseAt(0).Found);
  EXPECT_TRUE(V.empty());
}

TEST(VectorTest, ResizeCountGrowsLogarithmically) {
  Vector V;
  for (Key K = 0; K != 1000; ++K)
    V.pushBack(K);
  // Initial capacity 8, doubling: 8,16,...,1024 -> 8 growths.
  EXPECT_EQ(V.resizeCount(), 8u);
}

TEST(VectorTest, IterateWrapsAndCounts) {
  Vector V;
  for (Key K : {1, 2, 3})
    V.pushBack(K);
  OpResult R = V.iterate(7);
  EXPECT_TRUE(R.Found);
  EXPECT_EQ(R.Cost, 7u);
  EXPECT_FALSE(Vector().iterate(3).Found);
}

TEST(VectorTest, ClearReleasesSimMemory) {
  Vector V(64);
  for (Key K = 0; K != 100; ++K)
    V.pushBack(K);
  EXPECT_GT(V.simLiveBytes(), 0u);
  V.clear();
  EXPECT_EQ(V.simLiveBytes(), 0u);
  EXPECT_EQ(V.size(), 0u);
  V.pushBack(5); // usable after clear
  EXPECT_EQ(V.at(0), 5);
}

TEST(VectorTest, ResizeBranchFiresOnGrowth) {
  MachineModel M(MachineConfig::core2());
  Vector V(8, &M);
  for (Key K = 0; K != 9; ++K)
    V.pushBack(K); // grows at 0 (cap 8 alloc) and at 8
  HardwareCounters C = M.counters();
  EXPECT_GT(C.Branches, 0u);
  EXPECT_GT(C.Allocations, 0u);
}

//===----------------------------------------------------------------------===//
// List
//===----------------------------------------------------------------------===//

TEST(ListTest, PushBothEnds) {
  List L;
  L.pushBack(2);
  L.pushFront(1);
  L.pushBack(3);
  EXPECT_EQ(L.size(), 3u);
  EXPECT_EQ(L.at(0), 1);
  EXPECT_EQ(L.at(1), 2);
  EXPECT_EQ(L.at(2), 3);
}

TEST(ListTest, ConstantTimeEndInsertion) {
  List L;
  for (Key K = 0; K != 100; ++K) {
    OpResult R = L.pushBack(K);
    EXPECT_EQ(R.Cost, 0u);
  }
}

TEST(ListTest, InsertAtWalks) {
  List L;
  for (Key K : {1, 2, 4})
    L.pushBack(K);
  OpResult R = L.insertAt(2, 3);
  EXPECT_EQ(R.Cost, 2u); // walked two nodes
  EXPECT_EQ(L.at(2), 3);
  L.insertAt(99, 5); // clamps to tail
  EXPECT_EQ(L.at(4), 5);
}

TEST(ListTest, EraseValueAndMisses) {
  List L;
  for (Key K : {5, 6, 7})
    L.pushBack(K);
  OpResult R = L.eraseValue(6);
  EXPECT_TRUE(R.Found);
  EXPECT_EQ(R.Cost, 2u);
  EXPECT_EQ(L.size(), 2u);
  EXPECT_FALSE(L.eraseValue(42).Found);
  EXPECT_EQ(L.at(1), 7);
}

TEST(ListTest, EraseAtBoundaries) {
  List L;
  for (Key K : {1, 2, 3})
    L.pushBack(K);
  EXPECT_TRUE(L.eraseAt(0).Found);
  EXPECT_EQ(L.at(0), 2);
  EXPECT_TRUE(L.eraseAt(1).Found);
  EXPECT_EQ(L.size(), 1u);
  EXPECT_FALSE(L.eraseAt(5).Found);
}

TEST(ListTest, IterateWrapsAcrossEnd) {
  List L;
  for (Key K : {1, 2})
    L.pushBack(K);
  EXPECT_EQ(L.iterate(5).Cost, 5u);
}

TEST(ListTest, CursorSurvivesErase) {
  List L;
  for (Key K : {1, 2, 3, 4})
    L.pushBack(K);
  L.iterate(2);          // cursor now at node 3
  L.eraseValue(3);       // erase the node under the cursor
  OpResult R = L.iterate(1);
  EXPECT_TRUE(R.Found);  // no crash, cursor moved on
  EXPECT_EQ(L.size(), 3u);
}

TEST(ListTest, SimMemoryPerNode) {
  List L(48); // elem 48 -> node 64 simulated bytes
  L.pushBack(1);
  L.pushBack(2);
  EXPECT_EQ(L.simLiveBytes(), 2u * 64);
  L.clear();
  EXPECT_EQ(L.simLiveBytes(), 0u);
}

//===----------------------------------------------------------------------===//
// Deque
//===----------------------------------------------------------------------===//

TEST(DequeTest, PushBothEndsO1) {
  Deque D;
  D.pushBack(2);
  OpResult R = D.pushFront(1);
  EXPECT_LE(R.Cost, 0u + 8); // no shifting (only a possible resize copy)
  D.pushBack(3);
  EXPECT_EQ(D.at(0), 1);
  EXPECT_EQ(D.at(1), 2);
  EXPECT_EQ(D.at(2), 3);
}

TEST(DequeTest, InsertShiftsTowardNearerEnd) {
  Deque D;
  for (Key K = 0; K != 10; ++K)
    D.pushBack(K);
  OpResult NearFront = D.insertAt(1, 100);
  EXPECT_EQ(NearFront.Cost, 1u);
  OpResult NearBack = D.insertAt(10, 200);
  EXPECT_EQ(NearBack.Cost, 1u);
  EXPECT_EQ(D.at(1), 100);
  EXPECT_EQ(D.at(10), 200);
}

TEST(DequeTest, MirrorsStdDequeUnderRandomOps) {
  Deque D;
  std::deque<Key> Ref;
  Rng R(77);
  for (int I = 0; I != 4000; ++I) {
    switch (R.nextBelow(6)) {
    case 0: {
      Key K = static_cast<Key>(R.nextBelow(1000));
      D.pushBack(K);
      Ref.push_back(K);
      break;
    }
    case 1: {
      Key K = static_cast<Key>(R.nextBelow(1000));
      D.pushFront(K);
      Ref.push_front(K);
      break;
    }
    case 2: {
      uint64_t Pos = R.nextBelow(Ref.size() + 1);
      Key K = static_cast<Key>(R.nextBelow(1000));
      D.insertAt(Pos, K);
      Ref.insert(Ref.begin() + static_cast<ptrdiff_t>(Pos), K);
      break;
    }
    case 3:
      if (!Ref.empty()) {
        uint64_t Pos = R.nextBelow(Ref.size());
        D.eraseAt(Pos);
        Ref.erase(Ref.begin() + static_cast<ptrdiff_t>(Pos));
      }
      break;
    case 4: {
      Key K = static_cast<Key>(R.nextBelow(1000));
      bool Mine = D.find(K).Found;
      bool Theirs = false;
      for (Key V : Ref)
        if (V == K) {
          Theirs = true;
          break;
        }
      ASSERT_EQ(Mine, Theirs);
      break;
    }
    default: {
      Key K = static_cast<Key>(R.nextBelow(1000));
      OpResult Mine = D.eraseValue(K);
      auto It = std::find(Ref.begin(), Ref.end(), K);
      ASSERT_EQ(Mine.Found, It != Ref.end());
      if (It != Ref.end())
        Ref.erase(It);
      break;
    }
    }
    ASSERT_EQ(D.size(), Ref.size());
  }
  for (size_t I = 0; I != Ref.size(); ++I)
    ASSERT_EQ(D.at(I), Ref[I]);
}

TEST(DequeTest, ResizePreservesOrder) {
  Deque D;
  for (Key K = 0; K != 5; ++K)
    D.pushFront(K);
  for (Key K = 0; K != 100; ++K)
    D.pushBack(1000 + K);
  EXPECT_GT(D.resizeCount(), 0u);
  EXPECT_EQ(D.at(0), 4);
  EXPECT_EQ(D.at(4), 0);
  EXPECT_EQ(D.at(5), 1000);
  EXPECT_EQ(D.at(104), 1099);
}

//===----------------------------------------------------------------------===//
// Cross-sequence property tests
//===----------------------------------------------------------------------===//

class SequenceEquivalence : public ::testing::TestWithParam<uint64_t> {};

/// Vector, List, and Deque must implement identical sequence semantics:
/// drive all three with the same operation tape and compare contents.
TEST_P(SequenceEquivalence, SameTapeSameContents) {
  uint64_t Seed = GetParam();
  Vector V;
  List L;
  Deque D;
  Rng R(Seed);
  for (int I = 0; I != 1500; ++I) {
    uint64_t Choice = R.nextBelow(6);
    Key K = static_cast<Key>(R.nextBelow(200));
    uint64_t Pos = R.nextBelow(V.size() + 1);
    switch (Choice) {
    case 0:
      V.pushBack(K);
      L.pushBack(K);
      D.pushBack(K);
      break;
    case 1:
      V.pushFront(K);
      L.pushFront(K);
      D.pushFront(K);
      break;
    case 2:
      V.insertAt(Pos, K);
      L.insertAt(Pos, K);
      D.insertAt(Pos, K);
      break;
    case 3: {
      OpResult A = V.eraseValue(K);
      OpResult B = L.eraseValue(K);
      OpResult C = D.eraseValue(K);
      ASSERT_EQ(A.Found, B.Found);
      ASSERT_EQ(A.Found, C.Found);
      break;
    }
    case 4:
      if (V.size()) {
        uint64_t P2 = Pos % V.size();
        V.eraseAt(P2);
        L.eraseAt(P2);
        D.eraseAt(P2);
      }
      break;
    default: {
      OpResult A = V.find(K);
      OpResult B = L.find(K);
      OpResult C = D.find(K);
      ASSERT_EQ(A.Found, B.Found);
      ASSERT_EQ(A.Found, C.Found);
      // Linear search from the front touches the same count everywhere.
      ASSERT_EQ(A.Cost, B.Cost);
      ASSERT_EQ(A.Cost, C.Cost);
      break;
    }
    }
    ASSERT_EQ(V.size(), L.size());
    ASSERT_EQ(V.size(), D.size());
  }
  for (uint64_t I = 0; I != V.size(); ++I) {
    ASSERT_EQ(V.at(I), L.at(I));
    ASSERT_EQ(V.at(I), D.at(I));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequenceEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

class ElementSizeSweep : public ::testing::TestWithParam<uint32_t> {};

/// Simulated memory must scale with the configured element size while the
/// semantics stay identical.
TEST_P(ElementSizeSweep, VectorFootprintScales) {
  uint32_t Elem = GetParam();
  Vector V(Elem);
  for (Key K = 0; K != 64; ++K)
    V.pushBack(K);
  EXPECT_GE(V.simLiveBytes(), 64u * V.elementBytes());
  EXPECT_EQ(V.elementBytes(), Elem < 8 ? 8u : Elem);
  EXPECT_EQ(V.find(63).Cost, 64u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ElementSizeSweep,
                         ::testing::Values(4, 8, 16, 32, 64, 128, 256));
